//! The unified REINFORCE episode engine.
//!
//! HeadStart is one algorithm regardless of what it prunes: sample
//! Bernoulli actions from the head-start policy, score them with
//! `R(A) = ACC − SPD`, take a self-critical REINFORCE step (Eqs. 5–10),
//! and repeat until both the reward and the policy stop moving. This
//! module owns that loop once — policy initialization, noise sampling,
//! Monte-Carlo action sampling, reward evaluation, the self-critical
//! baseline, the policy-gradient update and the convergence check — and
//! is parameterized by a [`PruningUnit`] that defines *what* an action
//! bit toggles (per-layer feature maps, whole residual blocks, or the
//! filters inside a block) and how an action is rewarded.
//!
//! [`LayerPruner`](crate::LayerPruner), [`BlockPruner`](crate::BlockPruner)
//! and [`InnerLayerPruner`](crate::InnerLayerPruner) are thin adapters
//! over this engine; they set up their unit, run it, and translate the
//! [`EngineOutcome`] into their decision types.
//!
//! Observability is uniform too: an [`EngineObserver`] receives one
//! [`EpisodeEvent`] per episode (inference reward, action ℓ₀, baseline)
//! and the final [`EpisodeTrace`], replacing the ad-hoc per-pruner trace
//! fields the three loops used to accumulate independently.

use hs_nn::Network;
use hs_telemetry::Level;
use hs_tensor::Rng;

use crate::config::HeadStartConfig;
use crate::error::HeadStartError;
use crate::policy::HeadStartNetwork;
use crate::reinforce::{
    inference_action, is_stable, kept_count, logit_gradient, policy_drift, sample_action,
};

/// What an episode's action bits toggle, and how an action is scored.
///
/// Implementations must not consume randomness inside
/// [`PruningUnit::action_reward`]: the engine's RNG stream is part of the
/// reproducibility contract (a fixed seed replays the exact decision).
pub trait PruningUnit {
    /// Human-readable unit kind, surfaced through observer events and
    /// error messages (e.g. `"layer"`, `"block"`, `"block-inner"`).
    fn kind(&self) -> &'static str;

    /// Number of binary units in the action vector (feature maps,
    /// residual blocks, …) — the policy emits one probability each.
    fn unit_count(&self) -> usize;

    /// Reward `R(A) = ACC − SPD` of one candidate action. The network is
    /// borrowed mutably so implementations can apply-and-restore masks,
    /// but must leave it exactly as found.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    fn action_reward(&mut self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError>;

    /// Whether the degenerate all-drop inference action should be
    /// guarded by force-keeping the highest-probability unit. Feature-map
    /// units need this (an empty layer is unbuildable); block units do
    /// not (shortcuts keep the network defined).
    fn guard_empty_inference(&self) -> bool {
        true
    }

    /// A shared-state view of the unit for evaluating candidate actions
    /// concurrently, or `None` when the unit needs exclusive mutable
    /// state per evaluation (the executor then falls back to in-order
    /// serial evaluation). The real units (layer/block/block-inner) all
    /// score actions through `&self` state plus a scratch network, so
    /// they opt in; test doubles with `&mut self` counters stay serial.
    fn as_parallel(&self) -> Option<&dyn ParallelReward> {
        None
    }
}

/// Shared-state candidate-action scoring, for executors that evaluate a
/// batch of actions on worker threads. The network argument is a
/// worker-local scratch clone; like [`PruningUnit::action_reward`], the
/// implementation must apply-and-restore and must not consume
/// randomness, so a batch folds to the same rewards in any execution
/// order.
pub trait ParallelReward: Sync {
    /// Reward `R(A) = ACC − SPD` of one candidate action.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    fn reward(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError>;
}

/// How the engine evaluates each episode's batch of candidate actions
/// (the `k` Monte-Carlo samples plus the inference action). The serial
/// executor walks the batch in order on the caller's thread; `hs-coord`
/// provides a sharded implementation that fans the batch out across
/// worker threads and folds rewards back in schedule order, so the
/// engine's observable behavior — RNG stream, reward vector, policy
/// update — is bit-identical for every executor.
pub trait EvalExecutor {
    /// Called once per engine run, before any episode, with the network
    /// in its pre-episode state and the unit's kind. Sharded executors
    /// snapshot worker-local scratch clones here and derive the unit's
    /// trace context (the executor sees units in sequence, so its Nth
    /// `begin_unit` call is unit ordinal N); the serial executor does
    /// nothing.
    fn begin_unit(&mut self, _net: &Network, _unit_kind: &'static str) {}

    /// Scores `actions` against the unit, returning one reward per
    /// action **in input order**, regardless of evaluation order.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    fn eval_batch(
        &mut self,
        unit: &mut dyn PruningUnit,
        net: &mut Network,
        actions: &[Vec<bool>],
    ) -> Result<Vec<f32>, HeadStartError>;
}

/// The default executor: evaluates the batch in order on the calling
/// thread via [`PruningUnit::action_reward`], exactly as the engine
/// always has.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl EvalExecutor for SerialExecutor {
    fn eval_batch(
        &mut self,
        unit: &mut dyn PruningUnit,
        net: &mut Network,
        actions: &[Vec<bool>],
    ) -> Result<Vec<f32>, HeadStartError> {
        actions
            .iter()
            .map(|action| unit.action_reward(net, action))
            .collect()
    }
}

/// Why the engine stopped training the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceReason {
    /// Reward spread and policy drift both fell below tolerance over the
    /// stability window ("nearly constant loss and reward", Sec. IV-A).
    Stable,
    /// The episode budget (`max_episodes`) ran out first.
    EpisodeBudget,
    /// The divergence guard exhausted its policy resets and the engine
    /// emitted the deterministic keep-everything fallback inception.
    GuardFallback,
}

/// What the divergence guard detected (see
/// [`GuardPolicy`](crate::config::GuardPolicy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardReason {
    /// A sampled or inference reward was NaN or infinite.
    NonFiniteReward,
    /// A reward magnitude exceeded `guard.reward_limit`.
    ExplodingReward,
    /// Mean policy entropy fell below `guard.entropy_floor` after the
    /// grace period.
    EntropyCollapse,
}

impl GuardReason {
    /// Stable string for telemetry fields.
    pub fn as_str(self) -> &'static str {
        match self {
            GuardReason::NonFiniteReward => "non_finite_reward",
            GuardReason::ExplodingReward => "exploding_reward",
            GuardReason::EntropyCollapse => "entropy_collapse",
        }
    }
}

/// What the engine did about a detected divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardAction {
    /// The head-start policy was re-initialized and the unit retried.
    PolicyReset,
    /// Resets were exhausted; the deterministic keep-everything
    /// inception was emitted instead.
    ThresholdFallback,
}

impl GuardAction {
    /// Stable string for telemetry fields.
    pub fn as_str(self) -> &'static str {
        match self {
            GuardAction::PolicyReset => "policy_reset",
            GuardAction::ThresholdFallback => "threshold_fallback",
        }
    }
}

/// Everything an observer sees about one guard recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// What the guard detected.
    pub reason: GuardReason,
    /// What the engine did about it.
    pub action: GuardAction,
    /// Episode (within the failed attempt) the divergence surfaced at.
    pub episode: usize,
    /// Policy resets performed so far for this unit, this one included.
    pub resets: usize,
}

/// The per-run trace every pruning path now emits: how long the policy
/// trained, the reward of the inference action per episode, and why the
/// loop stopped. One struct, shared by all unit kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeTrace {
    /// Episodes the policy trained for (in the final attempt, when the
    /// divergence guard restarted the unit).
    pub episodes: usize,
    /// Reward of the inference action `R(Aᴵ)` per episode (of the final
    /// attempt).
    pub reward_history: Vec<f32>,
    /// Why training stopped.
    pub convergence: ConvergenceReason,
    /// Policy resets the divergence guard performed for this unit
    /// (`0` on the healthy path).
    pub resets: usize,
}

impl EpisodeTrace {
    /// True when the loop stopped on the stability criterion rather than
    /// the episode budget.
    pub fn converged(&self) -> bool {
        self.convergence == ConvergenceReason::Stable
    }
}

/// Everything an observer sees about one finished episode.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeEvent<'a> {
    /// Unit kind, from [`PruningUnit::kind`].
    pub unit_kind: &'static str,
    /// Zero-based episode index.
    pub episode: usize,
    /// Keep probabilities the policy emitted this episode.
    pub probs: &'a [f32],
    /// Rewards of the `k` Monte-Carlo sampled actions.
    pub sampled_rewards: &'a [f32],
    /// Reward of the deterministic inference action `R(Aᴵ)`.
    pub inference_reward: f32,
    /// Baseline used in the gradient (equals `inference_reward` with the
    /// self-critical baseline on, `0.0` otherwise).
    pub baseline: f32,
    /// `‖Aᴵ‖₀` — units the inference action keeps.
    pub inference_l0: usize,
}

/// Hook for tracing the engine without changing its behavior. All
/// methods default to no-ops, so implementations override only what they
/// need.
pub trait EngineObserver {
    /// Called by whole-model schedules before each unit's episode loop
    /// starts, with the unit's ordinal (layer index, block index, …), so
    /// observers can attribute the following episodes.
    fn on_unit_start(&mut self, _unit_kind: &'static str, _ordinal: usize) {}

    /// Called once per episode, after the policy-gradient step.
    fn on_episode(&mut self, _event: &EpisodeEvent<'_>) {}

    /// Called when the divergence guard detects a failure and recovers
    /// (policy reset or deterministic fallback).
    fn on_recovery(&mut self, _unit_kind: &'static str, _event: &RecoveryEvent) {}

    /// Called once when the loop stops, with the completed trace.
    fn on_converged(&mut self, _unit_kind: &'static str, _trace: &EpisodeTrace) {}
}

/// The do-nothing observer used by [`EpisodeEngine::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl EngineObserver for NullObserver {}

/// An observer that logs episode rewards every `every` episodes — handy
/// for watching long prune schedules converge.
///
/// Historically this printed to stderr unconditionally; it now routes
/// through the telemetry dispatcher at a configurable [`Level`], so the
/// lines respect the process's `--log-level` (and also land in a JSONL
/// trace when one is configured).
#[derive(Debug, Clone)]
pub struct StderrObserver {
    /// Log every n-th episode (0 logs only convergence).
    pub every: usize,
    /// Level the lines are emitted at. [`Level::Debug`] by default, so
    /// an unconfigured process (stderr at info) stays quiet.
    pub level: Level,
}

impl StderrObserver {
    /// Logs every `every`-th episode at [`Level::Debug`].
    pub fn new(every: usize) -> StderrObserver {
        StderrObserver {
            every,
            level: Level::Debug,
        }
    }

    /// Builder: emits at `level` instead of [`Level::Debug`].
    #[must_use]
    pub fn at_level(mut self, level: Level) -> StderrObserver {
        self.level = level;
        self
    }
}

impl EngineObserver for StderrObserver {
    fn on_episode(&mut self, event: &EpisodeEvent<'_>) {
        if self.every > 0
            && event.episode.is_multiple_of(self.every)
            && hs_telemetry::enabled(self.level)
        {
            hs_telemetry::log(
                self.level,
                &format!("engine/{}", event.unit_kind),
                format!(
                    "episode {:3}: R(A^I) {:+.4} |A|_0 {} baseline {:+.4}",
                    event.episode, event.inference_reward, event.inference_l0, event.baseline
                ),
            );
        }
    }

    fn on_converged(&mut self, unit_kind: &'static str, trace: &EpisodeTrace) {
        hs_telemetry::log(
            self.level,
            &format!("engine/{unit_kind}"),
            format!(
                "stopped after {} episodes ({:?})",
                trace.episodes, trace.convergence
            ),
        );
    }
}

/// What the engine hands back: the converged probabilities, the guarded
/// inference action, and the episode trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// Final keep probabilities emitted by the policy.
    pub probs: Vec<f32>,
    /// The final inception `Aᴵ = 𝜑ₜ(p)`, guarded against the degenerate
    /// empty action when the unit requests it.
    pub final_action: Vec<bool>,
    /// Per-episode trace.
    pub trace: EpisodeTrace,
}

/// The single REINFORCE episode loop driving every HeadStart pruner.
#[derive(Debug, Clone, Copy)]
pub struct EpisodeEngine<'cfg> {
    cfg: &'cfg HeadStartConfig,
}

impl<'cfg> EpisodeEngine<'cfg> {
    /// Creates an engine over a configuration.
    pub fn new(cfg: &'cfg HeadStartConfig) -> Self {
        EpisodeEngine { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HeadStartConfig {
        self.cfg
    }

    /// Runs the episode loop without observation.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] for an invalid config (the
    /// engine entry is where every prune path fails fast) and propagates
    /// unit/network errors.
    pub fn run(
        &self,
        net: &mut Network,
        unit: &mut dyn PruningUnit,
        rng: &mut Rng,
    ) -> Result<EngineOutcome, HeadStartError> {
        self.run_observed(net, unit, rng, &mut NullObserver)
    }

    /// Runs the episode loop, reporting each episode to `observer`.
    ///
    /// # Errors
    ///
    /// As [`EpisodeEngine::run`].
    pub fn run_observed(
        &self,
        net: &mut Network,
        unit: &mut dyn PruningUnit,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
    ) -> Result<EngineOutcome, HeadStartError> {
        self.run_executed(net, unit, rng, observer, &mut SerialExecutor)
    }

    /// Runs the episode loop with an explicit batch-evaluation executor
    /// (serial, or `hs-coord`'s sharded coordinator). Every executor
    /// yields the same outcome bit for bit; only wall-clock differs.
    ///
    /// # Errors
    ///
    /// As [`EpisodeEngine::run`].
    pub fn run_executed(
        &self,
        net: &mut Network,
        unit: &mut dyn PruningUnit,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
        executor: &mut dyn EvalExecutor,
    ) -> Result<EngineOutcome, HeadStartError> {
        let cfg = self.cfg;
        cfg.validate()?;
        let units = unit.unit_count();
        executor.begin_unit(net, unit.kind());
        let mut resets = 0usize;
        loop {
            match self.attempt(net, unit, rng, observer, units, executor)? {
                Attempt::Finished {
                    probs,
                    reward_history,
                    episodes,
                    convergence,
                } => {
                    // The final inception: the inference action of the
                    // converged policy, guarded against the degenerate
                    // empty action where the unit requires at least one
                    // survivor.
                    let mut final_action = inference_action(&probs, cfg.t);
                    if unit.guard_empty_inference() && kept_count(&final_action) == 0 {
                        let best = probs
                            .iter()
                            .enumerate()
                            .max_by(|a, b| {
                                a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        final_action[best] = true;
                    }
                    let trace = EpisodeTrace {
                        episodes,
                        reward_history,
                        convergence,
                        resets,
                    };
                    observer.on_converged(unit.kind(), &trace);
                    return Ok(EngineOutcome {
                        probs,
                        final_action,
                        trace,
                    });
                }
                Attempt::Diverged {
                    reason,
                    episode,
                    reward_history,
                } => {
                    resets += 1;
                    if resets <= cfg.guard.max_resets {
                        // Reset: re-initialize the policy (the retry draws
                        // fresh weights and noise from the RNG stream) and
                        // run the unit again.
                        observer.on_recovery(
                            unit.kind(),
                            &RecoveryEvent {
                                reason,
                                action: GuardAction::PolicyReset,
                                episode,
                                resets,
                            },
                        );
                        continue;
                    }
                    // Resets exhausted: deterministic fallback. Keeping
                    // every unit (no pruning for this layer/block) is the
                    // inception a threshold over the untrained prior
                    // produces, and it always leaves the network valid.
                    observer.on_recovery(
                        unit.kind(),
                        &RecoveryEvent {
                            reason,
                            action: GuardAction::ThresholdFallback,
                            episode,
                            resets,
                        },
                    );
                    let trace = EpisodeTrace {
                        episodes: episode + 1,
                        reward_history,
                        convergence: ConvergenceReason::GuardFallback,
                        resets,
                    };
                    observer.on_converged(unit.kind(), &trace);
                    return Ok(EngineOutcome {
                        probs: vec![1.0f32; units],
                        final_action: vec![true; units],
                        trace,
                    });
                }
            }
        }
    }

    /// One guarded pass of the episode loop: policy init, noise, episodes
    /// until convergence, budget exhaustion, or detected divergence.
    fn attempt(
        &self,
        net: &mut Network,
        unit: &mut dyn PruningUnit,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
        units: usize,
        executor: &mut dyn EvalExecutor,
    ) -> Result<Attempt, HeadStartError> {
        let cfg = self.cfg;
        let guard = &cfg.guard;
        let mut policy = HeadStartNetwork::with_hyperparams(
            units,
            cfg.noise_size,
            cfg.lr,
            cfg.weight_decay,
            rng,
        )?;
        // The default fixed noise map gives the policy a stationary
        // optimization target; `resample_noise` is the ablation knob.
        let fixed_noise = policy.sample_noise(rng);

        let mut probs = vec![0.5f32; units];
        let mut reward_history = Vec::new();
        let mut prob_history: Vec<Vec<f32>> = Vec::new();
        let mut episodes = 0usize;
        let mut convergence = ConvergenceReason::EpisodeBudget;
        for episode in 0..cfg.max_episodes {
            episodes = episode + 1;
            let noise = if cfg.resample_noise {
                policy.sample_noise(rng)
            } else {
                fixed_noise.clone()
            };
            probs = policy.probs(&noise)?;
            if entropy_collapsed(guard, episode, &probs) {
                return Ok(Attempt::Diverged {
                    reason: GuardReason::EntropyCollapse,
                    episode,
                    reward_history,
                });
            }

            // The episode's candidate batch: k Monte-Carlo samples
            // (Eq. 6) plus the self-critical baseline action Aᴵ
            // (Eqs. 9–10). Sampling consumes RNG and stays on this
            // thread in schedule order; evaluation is RNG-free by the
            // unit contract, so the executor may score the batch in any
            // order (including across worker threads) and fold rewards
            // back by index — bit-identical to the serial walk.
            let mut actions: Vec<Vec<bool>> = Vec::with_capacity(cfg.k + 1);
            for _ in 0..cfg.k {
                actions.push(sample_action(&probs, rng));
            }
            actions.push(inference_action(&probs, cfg.t));
            let mut rewards = executor.eval_batch(unit, net, &actions)?;
            debug_assert_eq!(rewards.len(), actions.len());
            let mut r_inf = rewards.pop().unwrap_or(f32::NAN);
            let inf = actions.pop().unwrap_or_default();
            // Deterministic fault injection (armed only by tests/CI):
            // poison the inference reward so the guard path is exercised
            // end to end without a contrived unit.
            if hs_telemetry::faults::armed()
                && hs_telemetry::faults::trip("nan_reward", unit.kind())
            {
                r_inf = f32::NAN;
            }
            if let Some(reason) = divergence(guard, &rewards, r_inf) {
                return Ok(Attempt::Diverged {
                    reason,
                    episode,
                    reward_history,
                });
            }
            let baseline = if cfg.self_critical_baseline {
                r_inf
            } else {
                0.0
            };

            let grad = logit_gradient(&probs, &actions, &rewards, baseline);
            policy.train_step(&grad)?;
            reward_history.push(r_inf);
            prob_history.push(probs.clone());
            observer.on_episode(&EpisodeEvent {
                unit_kind: unit.kind(),
                episode,
                probs: &probs,
                sampled_rewards: &rewards,
                inference_reward: r_inf,
                baseline,
                inference_l0: kept_count(&inf),
            });

            // Converged when both the reward and the policy itself have
            // stopped moving over the stability window.
            let drift_ok = prob_history.len() > cfg.stability_window
                && policy_drift(
                    &prob_history[prob_history.len() - 1 - cfg.stability_window],
                    &probs,
                ) < cfg.drift_tol;
            if episodes >= cfg.min_episodes
                && drift_ok
                && is_stable(&reward_history, cfg.stability_window, cfg.stability_tol)
            {
                convergence = ConvergenceReason::Stable;
                break;
            }
        }
        Ok(Attempt::Finished {
            probs,
            reward_history,
            episodes,
            convergence,
        })
    }
}

/// Outcome of one guarded episode-loop attempt.
enum Attempt {
    /// The loop ran to convergence or budget exhaustion.
    Finished {
        probs: Vec<f32>,
        reward_history: Vec<f32>,
        episodes: usize,
        convergence: ConvergenceReason,
    },
    /// The guard detected divergence mid-loop.
    Diverged {
        reason: GuardReason,
        episode: usize,
        reward_history: Vec<f32>,
    },
}

/// Whether the policy's mean entropy counts as collapsed at `episode`.
/// The comparison is **strict**: entropy exactly at the floor is still
/// healthy, so a floor set from an observed healthy run never trips on
/// that same run. Disabled while `entropy_floor` is 0 or during the
/// grace window.
fn entropy_collapsed(guard: &crate::config::GuardPolicy, episode: usize, probs: &[f32]) -> bool {
    guard.entropy_floor > 0.0
        && episode >= guard.entropy_grace
        && crate::observe::policy_entropy(probs) < guard.entropy_floor
}

/// Checks one episode's rewards against the guard policy. Pure
/// observation: consumes no randomness and mutates nothing, so enabling
/// the guard leaves healthy runs bit-identical.
fn divergence(
    guard: &crate::config::GuardPolicy,
    sampled: &[f32],
    r_inf: f32,
) -> Option<GuardReason> {
    if !r_inf.is_finite() || sampled.iter().any(|r| !r.is_finite()) {
        return Some(GuardReason::NonFiniteReward);
    }
    if r_inf.abs() > guard.reward_limit || sampled.iter().any(|r| r.abs() > guard.reward_limit) {
        return Some(GuardReason::ExplodingReward);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A network-free unit: rewards actions by closeness to a target
    /// keep-count, so the engine's learning dynamics can be tested in
    /// isolation from any model.
    struct SyntheticUnit {
        units: usize,
        target_kept: usize,
        rewards_seen: usize,
    }

    impl PruningUnit for SyntheticUnit {
        fn kind(&self) -> &'static str {
            "synthetic"
        }

        fn unit_count(&self) -> usize {
            self.units
        }

        fn action_reward(
            &mut self,
            _net: &mut Network,
            action: &[bool],
        ) -> Result<f32, HeadStartError> {
            self.rewards_seen += 1;
            let kept = kept_count(action) as f32;
            Ok(-(kept - self.target_kept as f32).abs())
        }
    }

    #[derive(Default)]
    struct CountingObserver {
        episodes: usize,
        converged: usize,
        last_l0: usize,
    }

    impl EngineObserver for CountingObserver {
        fn on_episode(&mut self, event: &EpisodeEvent<'_>) {
            self.episodes += 1;
            self.last_l0 = event.inference_l0;
            assert_eq!(event.unit_kind, "synthetic");
            assert_eq!(event.sampled_rewards.len(), 3);
        }

        fn on_converged(&mut self, kind: &'static str, trace: &EpisodeTrace) {
            self.converged += 1;
            assert_eq!(kind, "synthetic");
            assert!(trace.episodes > 0);
        }
    }

    #[test]
    fn engine_learns_the_target_keep_count() {
        let cfg = HeadStartConfig::new(2.0).max_episodes(120).eval_images(8);
        let mut net = Network::new();
        let mut unit = SyntheticUnit {
            units: 8,
            target_kept: 4,
            rewards_seen: 0,
        };
        let mut rng = Rng::seed_from(0);
        let out = EpisodeEngine::new(&cfg)
            .run(&mut net, &mut unit, &mut rng)
            .unwrap();
        let kept = kept_count(&out.final_action);
        assert!(
            (2..=6).contains(&kept),
            "learned keep count {kept} far from target 4"
        );
        assert_eq!(out.trace.reward_history.len(), out.trace.episodes);
        // k samples + 1 inference evaluation per episode.
        assert_eq!(unit.rewards_seen, out.trace.episodes * (cfg.k + 1));
    }

    #[test]
    fn observer_sees_every_episode_and_convergence() {
        let cfg = HeadStartConfig::new(2.0).max_episodes(6).eval_images(8);
        let mut net = Network::new();
        let mut unit = SyntheticUnit {
            units: 4,
            target_kept: 2,
            rewards_seen: 0,
        };
        let mut rng = Rng::seed_from(1);
        let mut obs = CountingObserver::default();
        let out = EpisodeEngine::new(&cfg)
            .run_observed(&mut net, &mut unit, &mut rng, &mut obs)
            .unwrap();
        assert_eq!(obs.episodes, out.trace.episodes);
        assert_eq!(obs.converged, 1);
    }

    #[test]
    fn invalid_config_fails_fast_at_engine_entry() {
        let cfg = HeadStartConfig::new(0.1); // sp < 1 is invalid
        let mut net = Network::new();
        let mut unit = SyntheticUnit {
            units: 4,
            target_kept: 2,
            rewards_seen: 0,
        };
        let mut rng = Rng::seed_from(2);
        let err = EpisodeEngine::new(&cfg)
            .run(&mut net, &mut unit, &mut rng)
            .unwrap_err();
        assert!(matches!(err, HeadStartError::BadConfig { field: "sp", .. }));
        assert_eq!(unit.rewards_seen, 0, "no rewards before validation");
    }

    /// A unit that returns NaN rewards from `fail_from` onwards —
    /// forever, so every retry diverges too.
    struct PoisonedUnit {
        units: usize,
        fail_from: usize,
        rewards_seen: usize,
    }

    impl PruningUnit for PoisonedUnit {
        fn kind(&self) -> &'static str {
            "poisoned"
        }

        fn unit_count(&self) -> usize {
            self.units
        }

        fn action_reward(
            &mut self,
            _net: &mut Network,
            action: &[bool],
        ) -> Result<f32, HeadStartError> {
            self.rewards_seen += 1;
            if self.rewards_seen > self.fail_from {
                Ok(f32::NAN)
            } else {
                Ok(-(kept_count(action) as f32))
            }
        }
    }

    #[derive(Default)]
    struct RecoveryRecorder {
        recoveries: Vec<(GuardReason, GuardAction, usize)>,
    }

    impl EngineObserver for RecoveryRecorder {
        fn on_recovery(&mut self, kind: &'static str, event: &RecoveryEvent) {
            assert_eq!(kind, "poisoned");
            self.recoveries
                .push((event.reason, event.action, event.resets));
        }
    }

    #[test]
    fn nan_rewards_trigger_resets_then_deterministic_fallback() {
        let cfg = HeadStartConfig::new(2.0).max_episodes(50).eval_images(8);
        assert_eq!(cfg.guard.max_resets, 2);
        let mut net = Network::new();
        let mut unit = PoisonedUnit {
            units: 6,
            fail_from: 10,
            rewards_seen: 0,
        };
        let mut rng = Rng::seed_from(4);
        let mut obs = RecoveryRecorder::default();
        let out = EpisodeEngine::new(&cfg)
            .run_observed(&mut net, &mut unit, &mut rng, &mut obs)
            .unwrap();
        // 2 resets + 1 fallback, in order.
        assert_eq!(obs.recoveries.len(), 3);
        assert_eq!(
            obs.recoveries[0],
            (GuardReason::NonFiniteReward, GuardAction::PolicyReset, 1)
        );
        assert_eq!(
            obs.recoveries[1],
            (GuardReason::NonFiniteReward, GuardAction::PolicyReset, 2)
        );
        assert_eq!(
            obs.recoveries[2],
            (
                GuardReason::NonFiniteReward,
                GuardAction::ThresholdFallback,
                3
            )
        );
        // The fallback keeps every unit and reports itself honestly.
        assert_eq!(out.final_action, vec![true; 6]);
        assert_eq!(out.trace.convergence, ConvergenceReason::GuardFallback);
        assert_eq!(out.trace.resets, 3);
        assert!(!out.trace.converged());
    }

    #[test]
    fn transient_divergence_recovers_within_the_reset_budget() {
        // Rewards go NaN briefly, then the unit heals: the first retry
        // should run to completion with a normal convergence reason.
        struct HealingUnit {
            rewards_seen: usize,
        }
        impl PruningUnit for HealingUnit {
            fn kind(&self) -> &'static str {
                "poisoned"
            }
            fn unit_count(&self) -> usize {
                4
            }
            fn action_reward(
                &mut self,
                _net: &mut Network,
                action: &[bool],
            ) -> Result<f32, HeadStartError> {
                self.rewards_seen += 1;
                // Exactly one poisoned reward: the retry starts healthy.
                if self.rewards_seen == 8 {
                    Ok(f32::INFINITY)
                } else {
                    Ok(-((kept_count(action) as f32) - 2.0).abs())
                }
            }
        }
        let cfg = HeadStartConfig::new(2.0).max_episodes(30).eval_images(8);
        let mut net = Network::new();
        let mut unit = HealingUnit { rewards_seen: 0 };
        let mut rng = Rng::seed_from(5);
        let mut obs = RecoveryRecorder::default();
        let out = EpisodeEngine::new(&cfg)
            .run_observed(&mut net, &mut unit, &mut rng, &mut obs)
            .unwrap();
        assert_eq!(obs.recoveries.len(), 1);
        assert_eq!(obs.recoveries[0].1, GuardAction::PolicyReset);
        assert_ne!(out.trace.convergence, ConvergenceReason::GuardFallback);
        assert_eq!(out.trace.resets, 1);
    }

    #[test]
    fn exploding_rewards_and_entropy_collapse_are_detected() {
        assert_eq!(
            divergence(
                &crate::config::GuardPolicy::default(),
                &[1.0, f32::NAN],
                0.0
            ),
            Some(GuardReason::NonFiniteReward)
        );
        let limited = crate::config::GuardPolicy {
            reward_limit: 10.0,
            ..Default::default()
        };
        assert_eq!(
            divergence(&limited, &[1.0], 50.0),
            Some(GuardReason::ExplodingReward)
        );
        assert_eq!(
            divergence(&limited, &[-11.0], 0.5),
            Some(GuardReason::ExplodingReward)
        );
        assert_eq!(divergence(&limited, &[1.0, -2.0], 0.5), None);

        // Entropy collapse: a saturated policy past the grace period
        // diverges when the floor is enabled.
        struct Saturating;
        impl PruningUnit for Saturating {
            fn kind(&self) -> &'static str {
                "poisoned"
            }
            fn unit_count(&self) -> usize {
                4
            }
            fn action_reward(
                &mut self,
                _net: &mut Network,
                action: &[bool],
            ) -> Result<f32, HeadStartError> {
                // Strongly favor keeping everything: probabilities
                // saturate toward 1 and entropy collapses.
                Ok(kept_count(action) as f32 * 100.0)
            }
        }
        let guard = crate::config::GuardPolicy {
            entropy_floor: 0.6,
            entropy_grace: 2,
            max_resets: 0,
            ..Default::default()
        };
        let cfg = HeadStartConfig::new(2.0)
            .max_episodes(200)
            .eval_images(8)
            .learning_rate(0.5)
            .guard_policy(guard);
        let mut net = Network::new();
        let mut rng = Rng::seed_from(6);
        let out = EpisodeEngine::new(&cfg)
            .run(&mut net, &mut Saturating, &mut rng)
            .unwrap();
        assert_eq!(out.trace.convergence, ConvergenceReason::GuardFallback);
    }

    #[test]
    fn empty_inference_guard_respects_unit_preference() {
        // A unit whose reward pushes every probability to zero.
        struct DropEverything;
        impl PruningUnit for DropEverything {
            fn kind(&self) -> &'static str {
                "drop"
            }
            fn unit_count(&self) -> usize {
                3
            }
            fn action_reward(
                &mut self,
                _net: &mut Network,
                action: &[bool],
            ) -> Result<f32, HeadStartError> {
                Ok(-(kept_count(action) as f32))
            }
        }
        let cfg = HeadStartConfig::new(2.0).max_episodes(150).eval_images(8);
        let mut net = Network::new();
        let mut rng = Rng::seed_from(3);
        let out = EpisodeEngine::new(&cfg)
            .run(&mut net, &mut DropEverything, &mut rng)
            .unwrap();
        // guard_empty_inference defaults to true: at least one survivor.
        assert!(kept_count(&out.final_action) >= 1);
    }

    #[test]
    fn entropy_exactly_at_the_floor_is_still_healthy() {
        // The collapse comparison is strict: a floor calibrated from an
        // observed healthy entropy must not trip on that same value.
        let probs = vec![0.3f32, 0.5, 0.7, 0.9];
        let at_floor = crate::observe::policy_entropy(&probs);
        let guard = crate::config::GuardPolicy {
            entropy_floor: at_floor,
            entropy_grace: 0,
            ..Default::default()
        };
        assert!(!entropy_collapsed(&guard, 0, &probs));
        // One ulp above the observed entropy and the same policy trips.
        let above = crate::config::GuardPolicy {
            entropy_floor: at_floor.next_up(),
            entropy_grace: 0,
            ..Default::default()
        };
        assert!(entropy_collapsed(&above, 0, &probs));
        // The grace window suppresses the check entirely...
        let graced = crate::config::GuardPolicy {
            entropy_floor: 1_000.0,
            entropy_grace: 5,
            ..Default::default()
        };
        assert!(!entropy_collapsed(&graced, 4, &probs));
        // ...until the boundary episode, where it applies (>=, not >).
        assert!(entropy_collapsed(&graced, 5, &probs));
        // A floor of exactly 0.0 disables the check even for a fully
        // saturated (zero-entropy) policy.
        let disabled = crate::config::GuardPolicy {
            entropy_floor: 0.0,
            entropy_grace: 0,
            ..Default::default()
        };
        assert!(!entropy_collapsed(&disabled, 10, &[1.0, 1.0, 1.0]));
    }

    #[test]
    fn nan_reward_on_the_very_first_episode_is_guarded() {
        // fail_from: 0 poisons the first reward the engine ever sees —
        // there is no healthy history to fall back on, and the guard
        // must still reset and eventually keep everything.
        let cfg = HeadStartConfig::new(2.0).max_episodes(50).eval_images(8);
        let mut net = Network::new();
        let mut unit = PoisonedUnit {
            units: 5,
            fail_from: 0,
            rewards_seen: 0,
        };
        let mut rng = Rng::seed_from(7);
        let mut obs = RecoveryRecorder::default();
        let out = EpisodeEngine::new(&cfg)
            .run_observed(&mut net, &mut unit, &mut rng, &mut obs)
            .unwrap();
        // Every attempt dies on episode 0: 2 resets + 1 fallback.
        assert_eq!(obs.recoveries.len(), 3);
        assert!(obs
            .recoveries
            .iter()
            .all(|(reason, _, _)| *reason == GuardReason::NonFiniteReward));
        assert_eq!(out.trace.convergence, ConvergenceReason::GuardFallback);
        assert_eq!(out.trace.episodes, 1, "diverged on the first episode");
        assert!(
            out.trace.reward_history.is_empty(),
            "no healthy episode ever completed"
        );
        assert_eq!(out.final_action, vec![true; 5]);
    }

    #[test]
    fn zero_reset_budget_falls_back_immediately_keeping_everything() {
        let guard = crate::config::GuardPolicy {
            max_resets: 0,
            ..Default::default()
        };
        let cfg = HeadStartConfig::new(2.0)
            .max_episodes(50)
            .eval_images(8)
            .guard_policy(guard);
        let mut net = Network::new();
        let mut unit = PoisonedUnit {
            units: 4,
            fail_from: 0,
            rewards_seen: 0,
        };
        let mut rng = Rng::seed_from(8);
        let mut obs = RecoveryRecorder::default();
        let out = EpisodeEngine::new(&cfg)
            .run_observed(&mut net, &mut unit, &mut rng, &mut obs)
            .unwrap();
        // No retry at all: a single ThresholdFallback recovery.
        assert_eq!(obs.recoveries.len(), 1);
        assert_eq!(
            obs.recoveries[0],
            (
                GuardReason::NonFiniteReward,
                GuardAction::ThresholdFallback,
                1
            )
        );
        assert_eq!(out.trace.convergence, ConvergenceReason::GuardFallback);
        assert_eq!(out.final_action, vec![true; 4]);
        assert_eq!(out.probs, vec![1.0f32; 4]);
        // The fallback consumed exactly one attempt's worth of rewards:
        // the k sampled actions plus the poisoned inference evaluation.
        assert_eq!(unit.rewards_seen, cfg.k + 1);
    }
}
