//! HeadStart over the convolutions *inside* residual blocks — the
//! paper's stated fine-grained ResNet variant: "the HeadStart concept
//! could be directly applied to prune the convolutional layers in each
//! block just like VGG".
//!
//! The pruned unit is a block's first convolution's feature maps: they
//! feed only the block's second convolution, so removing them never
//! disturbs the shortcut arithmetic. Actions are evaluated with the
//! block's inner channel mask and made physical with
//! [`ResidualBlock::prune_inner_maps`](hs_nn::block::ResidualBlock::prune_inner_maps).
//! The episode loop lives in the shared [`EpisodeEngine`]; this module
//! builds the [`InnerUnit`](crate::units::InnerUnit) and interprets the
//! outcome.

use hs_data::Dataset;
use hs_nn::loss::accuracy;
use hs_nn::{Network, Node};
use hs_tensor::Rng;

use crate::config::HeadStartConfig;
use crate::engine::{
    EngineObserver, EpisodeEngine, EvalExecutor, NullObserver, PruningUnit, SerialExecutor,
};
use crate::error::HeadStartError;
use crate::layer::LayerDecision;
use crate::reinforce::kept_count;
use crate::units::InnerUnit;

/// Per-block-interior HeadStart pruner.
#[derive(Debug, Clone)]
pub struct InnerLayerPruner {
    cfg: HeadStartConfig,
}

impl InnerLayerPruner {
    /// Creates an inner-layer pruner.
    pub fn new(cfg: HeadStartConfig) -> Self {
        InnerLayerPruner { cfg }
    }

    /// Runs the RL loop over the inner maps of residual block ordinal
    /// `block_ordinal` (position among [`Network::block_indices`]).
    /// The network is left unmodified; apply the decision with
    /// [`InnerLayerPruner::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadTarget`] for a bad ordinal and
    /// propagates network/config errors.
    pub fn prune(
        &self,
        net: &mut Network,
        block_ordinal: usize,
        ds: &Dataset,
        rng: &mut Rng,
    ) -> Result<LayerDecision, HeadStartError> {
        self.prune_observed(net, block_ordinal, ds, rng, &mut NullObserver)
    }

    /// As [`InnerLayerPruner::prune`], reporting each episode to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// As [`InnerLayerPruner::prune`].
    pub fn prune_observed(
        &self,
        net: &mut Network,
        block_ordinal: usize,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
    ) -> Result<LayerDecision, HeadStartError> {
        self.prune_executed(net, block_ordinal, ds, rng, observer, &mut SerialExecutor)
    }

    /// As [`InnerLayerPruner::prune_observed`], evaluating each episode's
    /// candidate batch through `executor` (bit-identical for every
    /// executor; only wall-clock differs).
    ///
    /// # Errors
    ///
    /// As [`InnerLayerPruner::prune`].
    pub fn prune_executed(
        &self,
        net: &mut Network,
        block_ordinal: usize,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
        executor: &mut dyn EvalExecutor,
    ) -> Result<LayerDecision, HeadStartError> {
        self.cfg.validate()?;
        let blocks = net.block_indices();
        let &block_node = blocks
            .get(block_ordinal)
            .ok_or_else(|| HeadStartError::BadTarget {
                detail: format!(
                    "block ordinal {block_ordinal} out of range ({} blocks)",
                    blocks.len()
                ),
            })?;
        let channels = match net.node(block_node) {
            Node::Block(b) => b.inner_channels(),
            _ => unreachable!("block_indices returns blocks"),
        };

        let n_eval = self.cfg.eval_images.min(ds.train_labels.len());
        let idx: Vec<usize> = (0..n_eval).collect();
        let eval_images = ds.train_images.index_select(0, &idx)?;
        let eval_labels: Vec<usize> = ds.train_labels[..n_eval].to_vec();
        let logits = net.forward(&eval_images, false)?;
        let acc_original = accuracy(&logits, &eval_labels)?;

        let mut unit = InnerUnit::new(
            block_node,
            channels,
            &eval_images,
            &eval_labels,
            acc_original,
            self.cfg.sp,
        );
        let outcome =
            EpisodeEngine::new(&self.cfg).run_executed(net, &mut unit, rng, observer, executor)?;

        // Report the inception accuracy of the final action by inverting
        // the reward: R + SPD = log(acc/acc₀ + 1).
        let final_reward = unit.action_reward(net, &outcome.final_action)?;
        let inception_eval_accuracy =
            ((final_reward + spd_of(channels, &outcome.final_action, self.cfg.sp)).exp() - 1.0)
                * acc_original;
        let keep: Vec<usize> = outcome
            .final_action
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect();
        Ok(LayerDecision {
            keep,
            probs: outcome.probs,
            trace: outcome.trace,
            inception_eval_accuracy: inception_eval_accuracy.clamp(0.0, 1.0),
        })
    }

    /// Applies a decision: physically prunes the block's inner maps.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadTarget`] for a bad ordinal and
    /// propagates surgery errors.
    pub fn apply(
        &self,
        net: &mut Network,
        block_ordinal: usize,
        decision: &LayerDecision,
    ) -> Result<(), HeadStartError> {
        let blocks = net.block_indices();
        let &block_node = blocks
            .get(block_ordinal)
            .ok_or_else(|| HeadStartError::BadTarget {
                detail: format!(
                    "block ordinal {block_ordinal} out of range ({} blocks)",
                    blocks.len()
                ),
            })?;
        match net.node_mut(block_node) {
            Node::Block(b) => {
                b.prune_inner_maps(&decision.keep)?;
                Ok(())
            }
            _ => unreachable!("block_indices returns blocks"),
        }
    }
}

fn spd_of(channels: usize, action: &[bool], sp: f32) -> f32 {
    crate::reward::spd_term(channels, kept_count(action), sp)
}

/// Whole-model block-internal pruning: runs the RL loop over every
/// prunable residual block front-to-back, applying each decision and
/// fine-tuning in between — the block-granularity analogue of
/// [`HeadStartPruner`](crate::HeadStartPruner) for ResNets, per the
/// paper's "just like VGG" remark.
///
/// Returns one [`LayerDecision`] per block (in
/// [`Network::block_indices`] order) and the final test accuracy.
///
/// # Errors
///
/// Propagates configuration, network and training errors.
pub fn prune_all_block_inners(
    cfg: &HeadStartConfig,
    ft: &hs_pruning::driver::FineTune,
    net: &mut Network,
    ds: &Dataset,
    rng: &mut Rng,
) -> Result<(Vec<LayerDecision>, f32), HeadStartError> {
    prune_all_block_inners_observed(cfg, ft, net, ds, rng, &mut NullObserver)
}

/// As [`prune_all_block_inners`], reporting every episode of every block
/// to `observer` (with [`EngineObserver::on_unit_start`] marking block
/// boundaries).
///
/// # Errors
///
/// Propagates configuration, network and training errors.
pub fn prune_all_block_inners_observed(
    cfg: &HeadStartConfig,
    ft: &hs_pruning::driver::FineTune,
    net: &mut Network,
    ds: &Dataset,
    rng: &mut Rng,
    observer: &mut dyn EngineObserver,
) -> Result<(Vec<LayerDecision>, f32), HeadStartError> {
    prune_all_block_inners_executed(cfg, ft, net, ds, rng, observer, &mut SerialExecutor)
}

/// As [`prune_all_block_inners_observed`], with an explicit
/// batch-evaluation executor shared by every block's episode loop.
///
/// # Errors
///
/// Propagates configuration, network and training errors.
#[allow(clippy::too_many_arguments)]
pub fn prune_all_block_inners_executed(
    cfg: &HeadStartConfig,
    ft: &hs_pruning::driver::FineTune,
    net: &mut Network,
    ds: &Dataset,
    rng: &mut Rng,
    observer: &mut dyn EngineObserver,
    executor: &mut dyn EvalExecutor,
) -> Result<(Vec<LayerDecision>, f32), HeadStartError> {
    cfg.validate()?;
    let pruner = InnerLayerPruner::new(cfg.clone());
    let block_count = net.block_indices().len();
    let mut decisions = Vec::with_capacity(block_count);
    for ordinal in 0..block_count {
        observer.on_unit_start("block-inner", ordinal);
        let decision = pruner.prune_executed(net, ordinal, ds, rng, observer, executor)?;
        pruner.apply(net, ordinal, &decision)?;
        ft.run(net, &ds.train_images, &ds.train_labels, rng)
            .map_err(HeadStartError::Prune)?;
        decisions.push(decision);
    }
    let acc = hs_nn::train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
    Ok((decisions, acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_data::DatasetSpec;
    use hs_nn::models;

    fn setup() -> (Dataset, Network, Rng) {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(4)
                .train_per_class(6)
                .test_per_class(3)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(0);
        let net = models::resnet_cifar(2, 3, 4, 0.25, &mut rng).unwrap();
        (ds, net, rng)
    }

    #[test]
    fn inner_pruning_shrinks_the_block() {
        let (ds, mut net, mut rng) = setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(6).eval_images(12);
        let pruner = InnerLayerPruner::new(cfg);
        let before = match net.node(net.block_indices()[0]) {
            Node::Block(b) => b.inner_channels(),
            _ => unreachable!(),
        };
        let d = pruner.prune(&mut net, 0, &ds, &mut rng).unwrap();
        assert!(!d.keep.is_empty());
        assert!(d.keep.len() <= before);
        pruner.apply(&mut net, 0, &d).unwrap();
        let after = match net.node(net.block_indices()[0]) {
            Node::Block(b) => b.inner_channels(),
            _ => unreachable!(),
        };
        assert_eq!(after, d.keep.len());
        // The pruned model still runs end to end.
        assert!(net.forward(&ds.test_images, false).is_ok());
    }

    #[test]
    fn prune_leaves_network_unmasked() {
        let (ds, mut net, mut rng) = setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(4).eval_images(8);
        InnerLayerPruner::new(cfg)
            .prune(&mut net, 1, &ds, &mut rng)
            .unwrap();
        for &b in &net.block_indices() {
            if let Node::Block(block) = net.node(b) {
                assert!(block.inner_mask().is_none());
            }
        }
    }

    #[test]
    fn whole_model_inner_pruning_shrinks_every_block() {
        let (ds, mut net, mut rng) = setup();
        let before: Vec<usize> = net
            .block_indices()
            .iter()
            .map(|&i| match net.node(i) {
                Node::Block(b) => b.inner_channels(),
                _ => unreachable!(),
            })
            .collect();
        let cfg = HeadStartConfig::new(2.0).max_episodes(4).eval_images(8);
        let ft = hs_pruning::driver::FineTune {
            epochs: 1,
            ..Default::default()
        };
        let (decisions, acc) = prune_all_block_inners(&cfg, &ft, &mut net, &ds, &mut rng).unwrap();
        assert_eq!(decisions.len(), before.len());
        assert!((0.0..=1.0).contains(&acc));
        for (ordinal, (&node, d)) in net.block_indices().iter().zip(&decisions).enumerate() {
            match net.node(node) {
                Node::Block(b) => assert_eq!(
                    b.inner_channels(),
                    d.keep.len(),
                    "block {ordinal} inner channels disagree with decision"
                ),
                _ => unreachable!(),
            }
        }
        assert!(net.forward(&ds.test_images, false).is_ok());
    }

    #[test]
    fn rejects_bad_ordinal() {
        let (ds, mut net, mut rng) = setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(2).eval_images(8);
        assert!(InnerLayerPruner::new(cfg)
            .prune(&mut net, 99, &ds, &mut rng)
            .is_err());
    }
}
