//! Fast masked-accuracy evaluation.
//!
//! During policy training HeadStart evaluates hundreds of candidate
//! actions against the same evaluation batch. Activations *before* the
//! pruned layer never change, so they are computed once; each action only
//! pays for masking + the network suffix.

use hs_nn::loss::accuracy;
use hs_nn::Network;
use hs_tensor::{pool, Tensor};

use crate::error::HeadStartError;

/// Masked prefixes smaller than this many elements are zeroed on the
/// calling thread; larger ones mask sample-parallel on the worker pool.
const MASK_PARALLEL_ELEMS: usize = 1 << 15;

/// Evaluates the accuracy of a network under arbitrary channel masks at
/// one site, re-running only the suffix after the masked node.
#[derive(Debug)]
pub struct MaskedEvaluator {
    mask_node: usize,
    prefix: Tensor,
    labels: Vec<usize>,
    channels: usize,
    baseline_accuracy: f32,
}

impl MaskedEvaluator {
    /// Captures the pre-mask activations at `mask_node` for the given
    /// evaluation batch and records the unmasked accuracy.
    ///
    /// Any mask already attached to `mask_node` is cleared first.
    ///
    /// # Errors
    ///
    /// Propagates network errors; the site's output must be `[N, C, H, W]`
    /// or `[N, C]`.
    pub fn new(
        net: &mut Network,
        mask_node: usize,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<Self, HeadStartError> {
        net.set_channel_mask(mask_node, None);
        let (logits, mut captured) = net.forward_capture(images, &[mask_node], false)?;
        let baseline_accuracy = accuracy(&logits, labels)?;
        let prefix = captured.remove(0);
        let shape = prefix.shape();
        let channels = match shape.rank() {
            4 | 2 => shape.dim(1),
            _ => {
                return Err(HeadStartError::BadTarget {
                    detail: format!("node {mask_node} output {shape} is not maskable"),
                })
            }
        };
        Ok(MaskedEvaluator {
            mask_node,
            prefix,
            labels: labels.to_vec(),
            channels,
            baseline_accuracy,
        })
    }

    /// Channels at the masked node.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Accuracy of the *unmasked* model on the evaluation batch
    /// (`f_W(D|W)` of Eq. 1).
    pub fn baseline_accuracy(&self) -> f32 {
        self.baseline_accuracy
    }

    /// Accuracy with the given binary keep-action applied.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadTarget`] if the action length differs
    /// from the channel count.
    pub fn accuracy_with_action(
        &self,
        net: &mut Network,
        action: &[bool],
    ) -> Result<f32, HeadStartError> {
        if action.len() != self.channels {
            return Err(HeadStartError::BadTarget {
                detail: format!(
                    "action of {} bits for {} channels",
                    action.len(),
                    self.channels
                ),
            });
        }
        let mut masked = self.prefix.clone();
        let shape = masked.shape().clone();
        let inner = match shape.rank() {
            4 => shape.dim(2) * shape.dim(3),
            _ => 1,
        };
        let sample_len = self.channels * inner;
        let data = masked.data_mut();
        let mask_sample = |sample: &mut [f32]| {
            for (c, &keep) in action.iter().enumerate() {
                if !keep {
                    sample[c * inner..(c + 1) * inner].fill(0.0);
                }
            }
        };
        if data.len() < MASK_PARALLEL_ELEMS {
            for sample in data.chunks_mut(sample_len) {
                mask_sample(sample);
            }
        } else {
            // One task per evaluation sample; samples are disjoint slices,
            // so the masking is deterministic under any thread count.
            let mask_sample = &mask_sample;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(sample_len)
                .map(|sample| {
                    Box::new(move || mask_sample(sample)) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool::run_tasks(tasks);
        }
        let logits = net.forward_range(&masked, self.mask_node + 1, false)?;
        Ok(accuracy(&logits, &self.labels)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::models;
    use hs_nn::surgery::conv_sites;
    use hs_tensor::{Rng, Shape};

    #[test]
    fn masked_accuracy_matches_slow_path() {
        let mut rng = Rng::seed_from(0);
        let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        let images = Tensor::randn(Shape::d4(8, 3, 8, 8), &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let site = conv_sites(&net)[1];
        let eval = MaskedEvaluator::new(&mut net, site.mask_node, &images, &labels).unwrap();
        let c = eval.channels();
        let action: Vec<bool> = (0..c).map(|i| i % 2 == 0).collect();
        let fast = eval.accuracy_with_action(&mut net, &action).unwrap();
        // Slow path: full forward with an equivalent mask.
        let mask: Vec<f32> = action.iter().map(|&a| if a { 1.0 } else { 0.0 }).collect();
        net.set_channel_mask(site.mask_node, Some(mask));
        let logits = net.forward(&images, false).unwrap();
        net.set_channel_mask(site.mask_node, None);
        let slow = accuracy(&logits, &labels).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn all_ones_action_reproduces_baseline() {
        let mut rng = Rng::seed_from(1);
        let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        let images = Tensor::randn(Shape::d4(8, 3, 8, 8), &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let site = conv_sites(&net)[0];
        let eval = MaskedEvaluator::new(&mut net, site.mask_node, &images, &labels).unwrap();
        let keep_all = vec![true; eval.channels()];
        let acc = eval.accuracy_with_action(&mut net, &keep_all).unwrap();
        assert_eq!(acc, eval.baseline_accuracy());
    }

    #[test]
    fn rejects_wrong_action_length() {
        let mut rng = Rng::seed_from(2);
        let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        let images = Tensor::randn(Shape::d4(4, 3, 8, 8), &mut rng);
        let labels = vec![0, 1, 2, 3];
        let site = conv_sites(&net)[0];
        let eval = MaskedEvaluator::new(&mut net, site.mask_node, &images, &labels).unwrap();
        assert!(eval.accuracy_with_action(&mut net, &[true]).is_err());
    }
}
