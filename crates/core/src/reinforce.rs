//! REINFORCE policy gradients for Bernoulli actions (Eqs. 5–10).
//!
//! With keep probabilities `p = σ(logits)` and a binary action `a`,
//! `∂ log P(a|p) / ∂ logit_c = a_c − p_c`. The estimator averaged over
//! `k` Monte-Carlo samples with baseline `b` (Eq. 8/9) is therefore
//!
//! ```text
//! ∂L/∂logit_c = −(1/k) Σ_j (R_j − b) · (a_jc − p_c)
//! ```
//!
//! which this module computes in closed form — no autodiff through the
//! sampling step is needed.

use hs_tensor::Rng;

/// Draws a binary action from `Bernoulli(p)` per unit (Eq. 6).
pub fn sample_action(probs: &[f32], rng: &mut Rng) -> Vec<bool> {
    probs.iter().map(|&p| rng.bernoulli(p)).collect()
}

/// The deterministic inference action `Aᴵ = 𝜑ₜ(p)` (Eq. 10): keep unit
/// `c` iff `p_c ≥ t`.
pub fn inference_action(probs: &[f32], t: f32) -> Vec<bool> {
    probs.iter().map(|&p| p >= t).collect()
}

/// Number of kept units in an action (`‖A‖₀`).
pub fn kept_count(action: &[bool]) -> usize {
    action.iter().filter(|&&a| a).count()
}

/// Computes `∂L/∂logits` for a batch of sampled actions with rewards and
/// a common baseline (Eq. 9 with `b = R(Aᴵ)`, or Eq. 7 with `b = 0`).
///
/// # Panics
///
/// Panics if `actions` and `rewards` disagree in length, any action's
/// length differs from `probs`, or no samples are given.
pub fn logit_gradient(
    probs: &[f32],
    actions: &[Vec<bool>],
    rewards: &[f32],
    baseline: f32,
) -> Vec<f32> {
    assert!(!actions.is_empty(), "need at least one sampled action");
    assert_eq!(actions.len(), rewards.len(), "one reward per action");
    let k = actions.len() as f32;
    let mut grad = vec![0.0f32; probs.len()];
    for (action, &r) in actions.iter().zip(rewards) {
        assert_eq!(action.len(), probs.len(), "action/probs length mismatch");
        let advantage = r - baseline;
        for ((g, &a), &p) in grad.iter_mut().zip(action).zip(probs) {
            let a = if a { 1.0 } else { 0.0 };
            // Loss gradient: minimize −E[(R − b) log p(A)].
            *g -= advantage * (a - p) / k;
        }
    }
    grad
}

/// Maximum absolute per-unit difference between two probability
/// vectors — the policy's "drift". Convergence requires the drift over a
/// window of episodes to vanish: the probabilities, not just the reward,
/// must have stopped moving ("the inception of this layer has been
/// found", Section IV-A).
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn policy_drift(old: &[f32], new: &[f32]) -> f32 {
    assert_eq!(old.len(), new.len(), "probability vectors differ in length");
    old.iter()
        .zip(new)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

/// Convergence detector: true when the last `window` rewards span less
/// than `tol` ("nearly constant loss and reward", Section IV-A).
pub fn is_stable(history: &[f32], window: usize, tol: f32) -> bool {
    if history.len() < window || window == 0 {
        return false;
    }
    let recent = &history[history.len() - window..];
    let max = recent.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let min = recent.iter().copied().fold(f32::INFINITY, f32::min);
    max - min < tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_action_respects_probabilities() {
        let mut rng = Rng::seed_from(0);
        let probs = vec![0.0, 1.0, 0.5];
        let mut ones = [0usize; 3];
        for _ in 0..1000 {
            let a = sample_action(&probs, &mut rng);
            for (c, &bit) in a.iter().enumerate() {
                if bit {
                    ones[c] += 1;
                }
            }
        }
        assert_eq!(ones[0], 0);
        assert_eq!(ones[1], 1000);
        assert!((ones[2] as f32 / 1000.0 - 0.5).abs() < 0.06);
    }

    #[test]
    fn inference_action_thresholds() {
        assert_eq!(
            inference_action(&[0.2, 0.5, 0.9], 0.5),
            vec![false, true, true]
        );
        assert_eq!(kept_count(&[true, false, true]), 2);
    }

    #[test]
    fn gradient_sign_pushes_good_actions_up() {
        // One sample, positive advantage, action keeps unit 0 and drops
        // unit 1: the logit of unit 0 must be pushed up (negative loss
        // gradient), unit 1 down (positive loss gradient).
        let probs = [0.5f32, 0.5];
        let grad = logit_gradient(&probs, &[vec![true, false]], &[1.0], 0.0);
        assert!(grad[0] < 0.0, "{grad:?}");
        assert!(grad[1] > 0.0, "{grad:?}");
        // Negative advantage flips the direction.
        let grad = logit_gradient(&probs, &[vec![true, false]], &[-1.0], 0.0);
        assert!(grad[0] > 0.0);
        assert!(grad[1] < 0.0);
    }

    #[test]
    fn baseline_shifts_advantage() {
        let probs = [0.5f32];
        // Reward equal to baseline → zero gradient.
        let grad = logit_gradient(&probs, &[vec![true]], &[0.7], 0.7);
        assert_eq!(grad, vec![0.0]);
        // Reward below baseline with a "keep" action → push down.
        let grad = logit_gradient(&probs, &[vec![true]], &[0.2], 0.7);
        assert!(grad[0] > 0.0);
    }

    #[test]
    fn gradient_averages_over_samples() {
        let probs = [0.5f32];
        let g1 = logit_gradient(&probs, &[vec![true]], &[1.0], 0.0);
        let g2 = logit_gradient(&probs, &[vec![true], vec![true]], &[1.0, 1.0], 0.0);
        assert!(
            (g1[0] - g2[0]).abs() < 1e-7,
            "averaging must not double-count"
        );
    }

    #[test]
    fn expected_gradient_is_baseline_invariant() {
        // Adding a constant baseline must not change the *expected*
        // gradient over the action distribution: E[(a − p)] = 0.
        let probs = [0.3f32];
        let mut rng = Rng::seed_from(5);
        let trials = 60_000;
        let mut sum_nob = 0.0f64;
        let mut sum_b = 0.0f64;
        for _ in 0..trials {
            let a = sample_action(&probs, &mut rng);
            // Constant reward so only the baseline differs.
            sum_nob += logit_gradient(&probs, std::slice::from_ref(&a), &[1.0], 0.0)[0] as f64;
            sum_b += logit_gradient(&probs, &[a], &[1.0], 0.4)[0] as f64;
        }
        let mean_nob = sum_nob / trials as f64;
        let mean_b = sum_b / trials as f64;
        assert!((mean_nob - mean_b).abs() < 0.005, "{mean_nob} vs {mean_b}");
    }

    #[test]
    fn policy_drift_is_max_abs_difference() {
        assert_eq!(policy_drift(&[0.1, 0.5], &[0.1, 0.5]), 0.0);
        assert!((policy_drift(&[0.1, 0.5], &[0.2, 0.45]) - 0.1).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn policy_drift_validates_lengths() {
        policy_drift(&[0.1], &[0.1, 0.2]);
    }

    #[test]
    fn stability_detector() {
        assert!(!is_stable(&[1.0, 1.0], 4, 0.1));
        assert!(is_stable(&[0.0, 5.0, 1.0, 1.01, 1.02, 0.99], 4, 0.1));
        assert!(!is_stable(&[0.0, 5.0, 1.0, 1.5, 1.02, 0.99], 4, 0.1));
        assert!(!is_stable(&[1.0; 10], 0, 0.1));
    }

    #[test]
    #[should_panic(expected = "one reward per action")]
    fn gradient_validates_lengths() {
        logit_gradient(&[0.5], &[vec![true]], &[1.0, 2.0], 0.0);
    }
}
