//! Block-level HeadStart pruning for ResNets (Section V-A.2).
//!
//! Instead of feature maps, the action vector toggles whole residual
//! blocks: an inactive block is bypassed through its identity shortcut.
//! Downsample blocks (the first block of groups 2 and 3) change tensor
//! shapes and therefore always stay active. The speedup half of the
//! reward is measured on *parameters* (Eq. 11: compression ratio
//! `W'/W`), which is how Table 4 reports "C.R.". The episode loop itself
//! lives in the shared [`EpisodeEngine`]; this module only builds the
//! [`BlockUnit`](crate::units::BlockUnit) and interprets the outcome.

use hs_data::Dataset;
use hs_nn::accounting::analyze;
use hs_nn::loss::accuracy;
use hs_nn::{train, Network, Node};
use hs_pruning::driver::FineTune;
use hs_tensor::Rng;

use crate::config::HeadStartConfig;
use crate::engine::{
    EngineObserver, EpisodeEngine, EpisodeTrace, EvalExecutor, NullObserver, SerialExecutor,
};
use crate::error::HeadStartError;
use crate::units::BlockUnit;

/// The outcome of block-level pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDecision {
    /// One keep-flag per residual block, aligned with
    /// [`Network::block_indices`]. Non-prunable blocks are always `true`.
    pub active: Vec<bool>,
    /// Episode trace emitted by the engine.
    pub trace: EpisodeTrace,
    /// Parameter compression ratio `W'/W` the decision realizes.
    pub compression_ratio: f32,
}

impl BlockDecision {
    /// Number of blocks kept active.
    pub fn active_blocks(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Episodes the policy trained for.
    pub fn episodes(&self) -> usize {
        self.trace.episodes
    }

    /// Reward of the inference action per episode.
    pub fn reward_history(&self) -> &[f32] {
        &self.trace.reward_history
    }
}

/// Trains one head-start network over a ResNet's prunable residual
/// blocks.
#[derive(Debug, Clone)]
pub struct BlockPruner {
    cfg: HeadStartConfig,
}

impl BlockPruner {
    /// Creates a block pruner; `cfg.sp` is the target *parameter*
    /// speedup (e.g. `2.0` ≈ half the parameters survive).
    pub fn new(cfg: HeadStartConfig) -> Self {
        BlockPruner { cfg }
    }

    /// Runs the RL loop. The network is restored to fully-active before
    /// returning; apply the decision with [`BlockPruner::apply`].
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadTarget`] if the network has no
    /// prunable blocks, plus config/network errors.
    pub fn prune(
        &self,
        net: &mut Network,
        ds: &Dataset,
        rng: &mut Rng,
    ) -> Result<BlockDecision, HeadStartError> {
        self.prune_observed(net, ds, rng, &mut NullObserver)
    }

    /// As [`BlockPruner::prune`], reporting each episode to `observer`.
    ///
    /// # Errors
    ///
    /// As [`BlockPruner::prune`].
    pub fn prune_observed(
        &self,
        net: &mut Network,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
    ) -> Result<BlockDecision, HeadStartError> {
        self.prune_executed(net, ds, rng, observer, &mut SerialExecutor)
    }

    /// As [`BlockPruner::prune_observed`], evaluating each episode's
    /// candidate batch through `executor` (bit-identical for every
    /// executor; only wall-clock differs).
    ///
    /// # Errors
    ///
    /// As [`BlockPruner::prune`].
    pub fn prune_executed(
        &self,
        net: &mut Network,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
        executor: &mut dyn EvalExecutor,
    ) -> Result<BlockDecision, HeadStartError> {
        self.cfg.validate()?;
        let blocks = net.block_indices();
        let prunable: Vec<usize> = blocks
            .iter()
            .copied()
            .filter(|&i| match net.node(i) {
                Node::Block(b) => b.can_prune(),
                _ => false,
            })
            .collect();
        if prunable.is_empty() {
            return Err(HeadStartError::BadTarget {
                detail: "network has no prunable residual blocks".to_string(),
            });
        }

        let n_eval = self.cfg.eval_images.min(ds.train_labels.len());
        let idx: Vec<usize> = (0..n_eval).collect();
        let eval_images = ds.train_images.index_select(0, &idx)?;
        let eval_labels: Vec<usize> = ds.train_labels[..n_eval].to_vec();
        let full_params = analyze(net, ds.channels(), ds.image_size())?.total_params as f32;
        let logits = net.forward(&eval_images, false)?;
        let acc_original = accuracy(&logits, &eval_labels)?;

        let mut unit = BlockUnit::new(
            &prunable,
            &eval_images,
            &eval_labels,
            acc_original,
            full_params,
            ds.channels(),
            ds.image_size(),
            self.cfg.sp,
        );
        let outcome =
            EpisodeEngine::new(&self.cfg).run_executed(net, &mut unit, rng, observer, executor)?;

        // Expand to all blocks (non-prunable stay active).
        let mut active = vec![true; blocks.len()];
        for (bit, &node) in outcome.final_action.iter().zip(&prunable) {
            let pos = blocks
                .iter()
                .position(|&b| b == node)
                .expect("prunable ⊂ blocks");
            active[pos] = *bit;
        }
        // Measure the realized compression.
        set_blocks(net, &blocks, &active)?;
        let pruned_params = analyze(net, ds.channels(), ds.image_size())?.total_params as f32;
        set_blocks(net, &blocks, &vec![true; blocks.len()])?;
        let compression_ratio = pruned_params / full_params.max(1.0);
        Ok(BlockDecision {
            active,
            trace: outcome.trace,
            compression_ratio,
        })
    }

    /// Applies a decision to the network (deactivates the chosen blocks).
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadTarget`] if the decision length does
    /// not match the network's blocks.
    pub fn apply(&self, net: &mut Network, decision: &BlockDecision) -> Result<(), HeadStartError> {
        let blocks = net.block_indices();
        if blocks.len() != decision.active.len() {
            return Err(HeadStartError::BadTarget {
                detail: format!(
                    "decision covers {} blocks, network has {}",
                    decision.active.len(),
                    blocks.len()
                ),
            });
        }
        set_blocks(net, &blocks, &decision.active)?;
        Ok(())
    }

    /// Full Table-4 pipeline: prune, apply, fine-tune; returns the
    /// decision and the fine-tuned test accuracy.
    ///
    /// # Errors
    ///
    /// Propagates pruning and training errors.
    pub fn prune_and_finetune(
        &self,
        net: &mut Network,
        ds: &Dataset,
        ft: &FineTune,
        rng: &mut Rng,
    ) -> Result<(BlockDecision, f32), HeadStartError> {
        self.prune_and_finetune_observed(net, ds, ft, rng, &mut NullObserver)
    }

    /// As [`BlockPruner::prune_and_finetune`], reporting each episode to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// Propagates pruning and training errors.
    pub fn prune_and_finetune_observed(
        &self,
        net: &mut Network,
        ds: &Dataset,
        ft: &FineTune,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
    ) -> Result<(BlockDecision, f32), HeadStartError> {
        self.prune_and_finetune_executed(net, ds, ft, rng, observer, &mut SerialExecutor)
    }

    /// As [`BlockPruner::prune_and_finetune_observed`], with an explicit
    /// batch-evaluation executor.
    ///
    /// # Errors
    ///
    /// Propagates pruning and training errors.
    pub fn prune_and_finetune_executed(
        &self,
        net: &mut Network,
        ds: &Dataset,
        ft: &FineTune,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
        executor: &mut dyn EvalExecutor,
    ) -> Result<(BlockDecision, f32), HeadStartError> {
        observer.on_unit_start("block", 0);
        let decision = self.prune_executed(net, ds, rng, observer, executor)?;
        self.apply(net, &decision)?;
        ft.run(net, &ds.train_images, &ds.train_labels, rng)
            .map_err(HeadStartError::Prune)?;
        let acc = train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
        Ok((decision, acc))
    }
}

fn set_blocks(net: &mut Network, blocks: &[usize], active: &[bool]) -> Result<(), HeadStartError> {
    for (&node, &a) in blocks.iter().zip(active) {
        // Skip no-op writes on non-prunable blocks.
        if let Node::Block(b) = net.node(node) {
            if b.is_active() == a {
                continue;
            }
        }
        net.set_block_active(node, a)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_data::DatasetSpec;
    use hs_nn::models;

    fn setup() -> (Dataset, Network, Rng) {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(4)
                .train_per_class(6)
                .test_per_class(3)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(0);
        // 9 residual blocks: n=3 and width 0.25 keep every stage's
        // channel count positive, so construction cannot fail.
        let net = models::resnet_cifar(3, 3, 4, 0.25, &mut rng)
            .expect("ResNet with positive channel counts always builds");
        (ds, net, rng)
    }

    #[test]
    fn decision_keeps_downsample_blocks() {
        let (ds, mut net, mut rng) = setup();
        let cfg = HeadStartConfig::new(1.5).max_episodes(4).eval_images(8);
        let d = BlockPruner::new(cfg)
            .prune(&mut net, &ds, &mut rng)
            .unwrap();
        assert_eq!(d.active.len(), 9);
        // Blocks 3 and 6 are the downsample boundaries of ResNet-20.
        assert!(d.active[3] && d.active[6]);
        assert!((0.0..=1.0).contains(&d.compression_ratio));
        // Network restored to fully active after prune().
        for &b in &net.block_indices() {
            match net.node(b) {
                Node::Block(blk) => assert!(blk.is_active()),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn apply_deactivates_chosen_blocks() {
        let (ds, mut net, mut rng) = setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(3).eval_images(8);
        let pruner = BlockPruner::new(cfg);
        let mut d = pruner.prune(&mut net, &ds, &mut rng).unwrap();
        // Force a known pattern: drop block 1.
        d.active = vec![true; 9];
        d.active[1] = false;
        pruner.apply(&mut net, &d).unwrap();
        match net.node(net.block_indices()[1]) {
            Node::Block(b) => assert!(!b.is_active()),
            _ => unreachable!(),
        }
        // Network still runs.
        assert!(net.forward(&ds.test_images, false).is_ok());
    }

    #[test]
    fn apply_validates_length() {
        use crate::engine::ConvergenceReason;
        let (_, mut net, _) = setup();
        let cfg = HeadStartConfig::new(2.0);
        let d = BlockDecision {
            active: vec![true; 3],
            trace: EpisodeTrace {
                episodes: 1,
                reward_history: vec![],
                convergence: ConvergenceReason::EpisodeBudget,
                resets: 0,
            },
            compression_ratio: 1.0,
        };
        assert!(BlockPruner::new(cfg).apply(&mut net, &d).is_err());
    }

    #[test]
    fn prune_and_finetune_reports_accuracy() {
        let (ds, mut net, mut rng) = setup();
        let cfg = HeadStartConfig::new(1.5).max_episodes(3).eval_images(8);
        let ft = FineTune {
            epochs: 1,
            ..FineTune::default()
        };
        let (d, acc) = BlockPruner::new(cfg)
            .prune_and_finetune(&mut net, &ds, &ft, &mut rng)
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(d.active_blocks() <= 9);
    }

    #[test]
    fn rejects_network_without_blocks() {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(2)
                .train_per_class(4)
                .test_per_class(2)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(1);
        let mut net = models::vgg11(3, 2, 8, 0.25, &mut rng).unwrap();
        let cfg = HeadStartConfig::new(2.0).max_episodes(2).eval_images(8);
        assert!(BlockPruner::new(cfg)
            .prune(&mut net, &ds, &mut rng)
            .is_err());
    }
}
