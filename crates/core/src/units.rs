//! The three [`PruningUnit`] implementations HeadStart ships: per-layer
//! feature maps, whole residual blocks, and the filters inside a block.
//!
//! Each unit binds the reward function `R(A) = ACC − SPD` to a concrete
//! granularity; the shared [`EpisodeEngine`](crate::EpisodeEngine) does
//! the rest. All three apply-and-restore their masks inside
//! [`PruningUnit::action_reward`], leaving the network untouched.

use hs_nn::accounting::analyze;
use hs_nn::loss::accuracy;
use hs_nn::{Network, Node};
use hs_tensor::Tensor;

use crate::engine::{ParallelReward, PruningUnit};
use crate::error::HeadStartError;
use crate::evaluator::MaskedEvaluator;
use crate::reinforce::kept_count;
use crate::reward::{acc_term, reward};

/// Feature-map granularity: one action bit per output channel of a
/// convolution, evaluated through a [`MaskedEvaluator`] (which caches
/// the forward prefix up to the masked layer).
#[derive(Debug)]
pub struct LayerUnit<'a> {
    evaluator: &'a MaskedEvaluator,
    channels: usize,
    acc_original: f32,
    sp: f32,
}

impl<'a> LayerUnit<'a> {
    /// Binds an evaluator and a target speedup. The original accuracy is
    /// the evaluator's cached baseline.
    pub fn new(evaluator: &'a MaskedEvaluator, sp: f32) -> Self {
        LayerUnit {
            channels: evaluator.channels(),
            acc_original: evaluator.baseline_accuracy(),
            evaluator,
            sp,
        }
    }

    /// Eval-split accuracy of the original (unmasked) network.
    pub fn acc_original(&self) -> f32 {
        self.acc_original
    }

    /// Eval-split accuracy under an action mask.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn accuracy(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        self.evaluator.accuracy_with_action(net, action)
    }

    fn score(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        let kept = kept_count(action);
        if kept == 0 {
            // No defined speedup; prohibitive penalty, skip the forward.
            return Ok(reward(0.0, self.acc_original, self.channels, 0, self.sp));
        }
        let acc = self.evaluator.accuracy_with_action(net, action)?;
        Ok(reward(acc, self.acc_original, self.channels, kept, self.sp))
    }
}

impl PruningUnit for LayerUnit<'_> {
    fn kind(&self) -> &'static str {
        "layer"
    }

    fn unit_count(&self) -> usize {
        self.channels
    }

    fn action_reward(&mut self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        self.score(net, action)
    }

    fn as_parallel(&self) -> Option<&dyn ParallelReward> {
        Some(self)
    }
}

impl ParallelReward for LayerUnit<'_> {
    fn reward(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        self.score(net, action)
    }
}

/// Residual-block granularity: one action bit per *prunable* block; an
/// inactive block is bypassed through its identity shortcut. The speedup
/// half of the reward is measured on parameters (Eq. 11: compression
/// ratio `W'/W`), matching how Table 4 reports "C.R.".
#[derive(Debug)]
pub struct BlockUnit<'a> {
    prunable: &'a [usize],
    eval_images: &'a Tensor,
    eval_labels: &'a [usize],
    acc_original: f32,
    full_params: f32,
    in_channels: usize,
    image_size: usize,
    sp: f32,
}

impl<'a> BlockUnit<'a> {
    /// Binds the prunable block nodes, the evaluation split, and the
    /// measurements the block reward needs.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        prunable: &'a [usize],
        eval_images: &'a Tensor,
        eval_labels: &'a [usize],
        acc_original: f32,
        full_params: f32,
        in_channels: usize,
        image_size: usize,
        sp: f32,
    ) -> Self {
        BlockUnit {
            prunable,
            eval_images,
            eval_labels,
            acc_original,
            full_params,
            in_channels,
            image_size,
            sp,
        }
    }
}

impl BlockUnit<'_> {
    fn score(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        // Apply the candidate action.
        for (&node, &keep) in self.prunable.iter().zip(action) {
            net.set_block_active(node, keep)?;
        }
        let logits = net.forward(self.eval_images, false)?;
        let acc = accuracy(&logits, self.eval_labels)?;
        let pruned_params = analyze(net, self.in_channels, self.image_size)?.total_params as f32;
        // Restore.
        for &node in self.prunable {
            net.set_block_active(node, true)?;
        }
        let learned_speedup = self.full_params / pruned_params.max(1.0);
        let spd = (learned_speedup - self.sp).abs();
        Ok(acc_term(acc, self.acc_original) - spd)
    }
}

impl PruningUnit for BlockUnit<'_> {
    fn kind(&self) -> &'static str {
        "block"
    }

    fn unit_count(&self) -> usize {
        self.prunable.len()
    }

    fn action_reward(&mut self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        self.score(net, action)
    }

    fn guard_empty_inference(&self) -> bool {
        // An all-drop action is still a defined network: every block is
        // bypassed through its shortcut and downsample blocks never make
        // it into the action vector.
        false
    }

    fn as_parallel(&self) -> Option<&dyn ParallelReward> {
        Some(self)
    }
}

impl ParallelReward for BlockUnit<'_> {
    fn reward(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        self.score(net, action)
    }
}

/// Intra-block granularity: one action bit per inner channel of a
/// residual block's first convolution — they feed only the block's
/// second convolution, so removing them never disturbs the shortcut
/// arithmetic. Actions are evaluated through the block's inner channel
/// mask.
#[derive(Debug)]
pub struct InnerUnit<'a> {
    block_node: usize,
    eval_images: &'a Tensor,
    eval_labels: &'a [usize],
    acc_original: f32,
    channels: usize,
    sp: f32,
}

impl<'a> InnerUnit<'a> {
    /// Binds a block node, its inner channel count, and the evaluation
    /// split.
    pub fn new(
        block_node: usize,
        channels: usize,
        eval_images: &'a Tensor,
        eval_labels: &'a [usize],
        acc_original: f32,
        sp: f32,
    ) -> Self {
        InnerUnit {
            block_node,
            eval_images,
            eval_labels,
            acc_original,
            channels,
            sp,
        }
    }

    /// Eval-split accuracy of the original (unmasked) network.
    pub fn acc_original(&self) -> f32 {
        self.acc_original
    }
}

impl InnerUnit<'_> {
    fn score(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        let kept = kept_count(action);
        if kept == 0 {
            return Ok(reward(0.0, self.acc_original, self.channels, 0, self.sp));
        }
        let mask: Vec<f32> = action.iter().map(|&a| if a { 1.0 } else { 0.0 }).collect();
        if let Node::Block(b) = net.node_mut(self.block_node) {
            b.set_inner_mask(Some(mask))?;
        }
        let logits = net.forward(self.eval_images, false)?;
        if let Node::Block(b) = net.node_mut(self.block_node) {
            b.set_inner_mask(None)?;
        }
        let acc = accuracy(&logits, self.eval_labels)?;
        Ok(reward(acc, self.acc_original, self.channels, kept, self.sp))
    }
}

impl PruningUnit for InnerUnit<'_> {
    fn kind(&self) -> &'static str {
        "block-inner"
    }

    fn unit_count(&self) -> usize {
        self.channels
    }

    fn action_reward(&mut self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        self.score(net, action)
    }

    fn as_parallel(&self) -> Option<&dyn ParallelReward> {
        Some(self)
    }
}

impl ParallelReward for InnerUnit<'_> {
    fn reward(&self, net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
        self.score(net, action)
    }
}
