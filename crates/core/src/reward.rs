//! The HeadStart reward function (Eqs. 2–4).

/// Accuracy half of the reward (Eq. 2):
/// `ACC = log(acc_pruned / acc_original + 1)`.
///
/// Larger when the pruned model's accuracy is closer to (or above) the
/// original's. A zero original accuracy is guarded by flooring the
/// denominator.
pub fn acc_term(acc_pruned: f32, acc_original: f32) -> f32 {
    (acc_pruned / acc_original.max(1e-6) + 1.0).ln()
}

/// Speedup half of the reward (Eq. 3):
/// `SPD = |C/‖A‖₀ − sp|` — the distance between the speedup the action
/// realizes and the preset target.
///
/// An empty action (`kept == 0`) has no defined speedup; it returns a
/// large penalty so the policy is pushed away from it.
pub fn spd_term(total: usize, kept: usize, sp: f32) -> f32 {
    if kept == 0 {
        return total as f32; // prohibitive
    }
    (total as f32 / kept as f32 - sp).abs()
}

/// Full reward (Eq. 4): `R(A) = ACC − SPD`.
pub fn reward(acc_pruned: f32, acc_original: f32, total: usize, kept: usize, sp: f32) -> f32 {
    acc_term(acc_pruned, acc_original) - spd_term(total, kept, sp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_term_is_monotone_in_pruned_accuracy() {
        let lo = acc_term(0.2, 0.8);
        let hi = acc_term(0.7, 0.8);
        assert!(hi > lo);
        // acc' == acc → log 2.
        assert!((acc_term(0.8, 0.8) - 2.0f32.ln()).abs() < 1e-6);
        // acc' == 0 → log 1 = 0.
        assert!(acc_term(0.0, 0.8).abs() < 1e-6);
    }

    #[test]
    fn acc_term_survives_zero_original() {
        assert!(acc_term(0.5, 0.0).is_finite());
    }

    #[test]
    fn spd_term_zero_at_target() {
        // 64 maps, keep 32, sp = 2 → exact.
        assert_eq!(spd_term(64, 32, 2.0), 0.0);
        // Keeping more than the target → positive distance.
        assert!(spd_term(64, 48, 2.0) > 0.0);
        // Keeping fewer → also positive.
        assert!(spd_term(64, 16, 2.0) > 0.0);
    }

    #[test]
    fn spd_term_penalizes_empty_action() {
        assert!(spd_term(64, 0, 2.0) >= 64.0);
    }

    #[test]
    fn reward_prefers_accurate_on_target_actions() {
        // Same accuracy, on-target keep beats off-target keep.
        let on = reward(0.6, 0.8, 64, 32, 2.0);
        let off = reward(0.6, 0.8, 64, 10, 2.0);
        assert!(on > off);
        // Same keep count, higher accuracy wins.
        let better = reward(0.75, 0.8, 64, 32, 2.0);
        assert!(better > on);
    }

    #[test]
    fn reward_is_finite_on_edge_cases() {
        assert!(reward(0.0, 0.0, 1, 1, 1.0).is_finite());
        assert!(reward(1.0, 1.0, 1000, 1, 5.0).is_finite());
    }
}
