//! Whole-model HeadStart pruning: layer-by-layer with fine-tuning, the
//! pipeline behind the paper's Tables 1–3.

use hs_data::Dataset;
use hs_nn::accounting::analyze;
use hs_nn::surgery::prune_feature_maps;
use hs_nn::{train, Network};
use hs_pruning::driver::{FineTune, LayerTrace, PruneOutcome};
use hs_tensor::Rng;

use crate::config::HeadStartConfig;
use crate::engine::{EngineObserver, EvalExecutor, NullObserver, SerialExecutor};
use crate::error::HeadStartError;
use crate::layer::{LayerDecision, LayerPruner};

/// Prunes every convolution of a model with HeadStart, fine-tuning after
/// each layer ("HeadStart seeks to find the optimal inception before
/// proceeding to the next layer").
#[derive(Debug, Clone)]
pub struct HeadStartPruner {
    cfg: HeadStartConfig,
    ft: FineTune,
}

impl HeadStartPruner {
    /// Creates a whole-model pruner.
    pub fn new(cfg: HeadStartConfig, ft: FineTune) -> Self {
        HeadStartPruner { cfg, ft }
    }

    /// The RL configuration.
    pub fn config(&self) -> &HeadStartConfig {
        &self.cfg
    }

    /// Prunes the whole model in place, returning the per-layer trace
    /// (Table 1) and final cost (Tables 2–3). Also returns the per-layer
    /// [`LayerDecision`]s for diagnostics.
    ///
    /// # Errors
    ///
    /// Propagates configuration, network and training errors.
    pub fn prune_model(
        &self,
        net: &mut Network,
        ds: &Dataset,
        rng: &mut Rng,
    ) -> Result<(PruneOutcome, Vec<LayerDecision>), HeadStartError> {
        self.prune_model_observed(net, ds, rng, &mut NullObserver)
    }

    /// As [`HeadStartPruner::prune_model`], reporting every episode of
    /// every layer to `observer` (with
    /// [`EngineObserver::on_unit_start`] marking layer boundaries).
    ///
    /// # Errors
    ///
    /// Propagates configuration, network and training errors.
    pub fn prune_model_observed(
        &self,
        net: &mut Network,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
    ) -> Result<(PruneOutcome, Vec<LayerDecision>), HeadStartError> {
        self.prune_model_executed(net, ds, rng, observer, &mut SerialExecutor)
    }

    /// As [`HeadStartPruner::prune_model_observed`], with an explicit
    /// batch-evaluation executor shared by every layer's episode loop
    /// (bit-identical for every executor; only wall-clock differs).
    ///
    /// # Errors
    ///
    /// Propagates configuration, network and training errors.
    pub fn prune_model_executed(
        &self,
        net: &mut Network,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
        executor: &mut dyn EvalExecutor,
    ) -> Result<(PruneOutcome, Vec<LayerDecision>), HeadStartError> {
        self.cfg.validate()?;
        let layer_pruner = LayerPruner::new(self.cfg.clone());
        let conv_count = net.conv_indices().len();
        let mut traces = Vec::with_capacity(conv_count);
        let mut decisions = Vec::with_capacity(conv_count);
        for ordinal in 0..conv_count {
            let conv_node = net.conv_indices()[ordinal];
            let maps_before = net.conv(conv_node)?.out_channels();
            observer.on_unit_start("layer", ordinal);
            let decision =
                layer_pruner.prune_executed(net, ordinal, ds, rng, observer, executor)?;
            prune_feature_maps(net, conv_node, &decision.keep)?;
            let inception_accuracy = train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
            self.ft.run(net, &ds.train_images, &ds.train_labels, rng)?;
            let finetuned_accuracy = train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
            let cost = analyze(net, ds.channels(), ds.image_size())?;
            traces.push(LayerTrace {
                conv_node,
                conv_ordinal: ordinal,
                maps_before,
                maps_after: decision.keep.len(),
                params_after: cost.total_params,
                flops_after: cost.total_flops,
                inception_accuracy,
                finetuned_accuracy,
            });
            decisions.push(decision);
        }
        let final_accuracy = train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
        let cost = analyze(net, ds.channels(), ds.image_size())?;
        let outcome = PruneOutcome {
            criterion: "HeadStart",
            traces,
            final_accuracy,
            cost,
        };
        Ok((outcome, decisions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_data::DatasetSpec;
    use hs_nn::models;

    #[test]
    fn whole_model_pruning_shrinks_and_still_runs() {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(4)
                .train_per_class(6)
                .test_per_class(3)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(0);
        let mut net = models::vgg11(3, 4, 8, 0.125, &mut rng).unwrap();
        let before = analyze(&net, 3, 8).unwrap();
        let cfg = HeadStartConfig::new(2.0).max_episodes(4).eval_images(12);
        let ft = FineTune {
            epochs: 1,
            ..FineTune::default()
        };
        let (outcome, decisions) = HeadStartPruner::new(cfg, ft)
            .prune_model(&mut net, &ds, &mut rng)
            .unwrap();
        assert_eq!(outcome.traces.len(), 8);
        assert_eq!(decisions.len(), 8);
        assert!(outcome.cost.total_params < before.total_params);
        assert_eq!(outcome.criterion, "HeadStart");
        // Pruned model still evaluates.
        let x = &ds.test_images;
        assert!(net.forward(x, false).is_ok());
        // Learned map counts are recorded consistently.
        for (t, d) in outcome.traces.iter().zip(&decisions) {
            assert_eq!(t.maps_after, d.keep.len());
            assert!(t.maps_after <= t.maps_before);
        }
    }
}
