//! The head-start network: the per-layer policy of Figure 2.

use hs_tensor::{Rng, Shape, Tensor};

use hs_nn::layer::{Conv2d, Flatten, Linear, ReLU};
use hs_nn::optim::{Optimizer, RmsProp};
use hs_nn::{Network, Node};

use crate::error::HeadStartError;

/// The paper's policy network: three convolution layers and one fully
/// connected layer, fed a Gaussian noise map, emitting one sigmoid
/// probability per prunable unit (feature map or residual block).
///
/// # Example
///
/// ```
/// use hs_core::HeadStartNetwork;
/// use hs_tensor::Rng;
///
/// # fn main() -> Result<(), hs_core::HeadStartError> {
/// let mut rng = Rng::seed_from(0);
/// let mut policy = HeadStartNetwork::new(16, 8, &mut rng)?;
/// let noise = policy.sample_noise(&mut rng);
/// let probs = policy.probs(&noise)?;
/// assert_eq!(probs.len(), 16);
/// assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HeadStartNetwork {
    net: Network,
    opt: RmsProp,
    out_units: usize,
    noise_size: usize,
}

const HIDDEN: usize = 8;

impl HeadStartNetwork {
    /// Creates a policy emitting `out_units` probabilities from a
    /// `noise_size`×`noise_size` single-channel noise map, trained with
    /// RMSprop at the paper's learning rate / weight decay.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] for degenerate sizes.
    pub fn new(out_units: usize, noise_size: usize, rng: &mut Rng) -> Result<Self, HeadStartError> {
        Self::with_hyperparams(out_units, noise_size, 1e-3, 5e-4, rng)
    }

    /// Creates a policy with explicit RMSprop hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] for degenerate sizes.
    pub fn with_hyperparams(
        out_units: usize,
        noise_size: usize,
        lr: f32,
        weight_decay: f32,
        rng: &mut Rng,
    ) -> Result<Self, HeadStartError> {
        if out_units == 0 {
            return Err(HeadStartError::BadConfig {
                field: "out_units",
                detail: "policy must emit at least one probability".to_string(),
            });
        }
        if noise_size < 4 {
            return Err(HeadStartError::BadConfig {
                field: "noise_size",
                detail: format!("{noise_size} below the 4px minimum"),
            });
        }
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, HIDDEN, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(HIDDEN, HIDDEN, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(HIDDEN, HIDDEN, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Flatten(Flatten::new()));
        net.push(Node::Linear(Linear::new(
            HIDDEN * noise_size * noise_size,
            out_units,
            rng,
        )));
        let opt = RmsProp::new(lr).weight_decay(weight_decay);
        Ok(HeadStartNetwork {
            net,
            opt,
            out_units,
            noise_size,
        })
    }

    /// Number of probabilities the policy emits.
    pub fn out_units(&self) -> usize {
        self.out_units
    }

    /// Draws a standard-normal noise map of the policy's input shape.
    pub fn sample_noise(&self, rng: &mut Rng) -> Tensor {
        Tensor::randn(Shape::d4(1, 1, self.noise_size, self.noise_size), rng)
    }

    /// Forward pass in training mode: returns the keep probabilities
    /// `σ(logits)` and caches activations for [`Self::train_step`].
    ///
    /// # Errors
    ///
    /// Propagates network errors (e.g. a noise map of the wrong shape).
    pub fn probs(&mut self, noise: &Tensor) -> Result<Vec<f32>, HeadStartError> {
        let logits = self.net.forward(noise, true)?;
        Ok(logits
            .data()
            .iter()
            .map(|&l| 1.0 / (1.0 + (-l).exp()))
            .collect())
    }

    /// Applies one policy-gradient step given `∂L/∂logits` (computed by
    /// [`crate::reinforce::logit_gradient`]). Must follow a [`Self::probs`]
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] if the gradient length is
    /// wrong, and propagates network errors (including the missing-
    /// forward case).
    pub fn train_step(&mut self, grad_logits: &[f32]) -> Result<(), HeadStartError> {
        if grad_logits.len() != self.out_units {
            return Err(HeadStartError::BadConfig {
                field: "grad_logits",
                detail: format!("{} grads for {} units", grad_logits.len(), self.out_units),
            });
        }
        let grad = Tensor::from_vec(Shape::d2(1, self.out_units), grad_logits.to_vec())?;
        self.net.zero_grad();
        self.net.backward(&grad)?;
        self.opt.step(&mut self.net);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probs_are_probabilities() {
        let mut rng = Rng::seed_from(0);
        let mut policy = HeadStartNetwork::new(12, 8, &mut rng).unwrap();
        let noise = policy.sample_noise(&mut rng);
        let p = policy.probs(&noise).unwrap();
        assert_eq!(p.len(), 12);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn training_pushes_probabilities_in_gradient_direction() {
        // Descending dL/dlogit = +1 on unit 0 must *lower* p₀;
        // dL/dlogit = −1 on unit 1 must raise p₁.
        let mut rng = Rng::seed_from(1);
        let mut policy = HeadStartNetwork::new(2, 8, &mut rng).unwrap();
        let noise = policy.sample_noise(&mut rng);
        let before = policy.probs(&noise).unwrap();
        for _ in 0..30 {
            policy.probs(&noise).unwrap();
            policy.train_step(&[1.0, -1.0]).unwrap();
        }
        let after = policy.probs(&noise).unwrap();
        assert!(after[0] < before[0], "{before:?} -> {after:?}");
        assert!(after[1] > before[1], "{before:?} -> {after:?}");
    }

    #[test]
    fn rejects_degenerate_construction() {
        let mut rng = Rng::seed_from(2);
        assert!(HeadStartNetwork::new(0, 8, &mut rng).is_err());
        assert!(HeadStartNetwork::new(4, 2, &mut rng).is_err());
    }

    #[test]
    fn train_step_validates_grad_length() {
        let mut rng = Rng::seed_from(3);
        let mut policy = HeadStartNetwork::new(4, 8, &mut rng).unwrap();
        let noise = policy.sample_noise(&mut rng);
        policy.probs(&noise).unwrap();
        assert!(policy.train_step(&[0.0; 3]).is_err());
    }

    #[test]
    fn train_step_without_forward_errors() {
        let mut rng = Rng::seed_from(4);
        let mut policy = HeadStartNetwork::new(4, 8, &mut rng).unwrap();
        assert!(policy.train_step(&[0.0; 4]).is_err());
    }
}
