//! `hs_chaos` CLI contract tests: input validation parity with
//! `hs_run --workers` (zero counts rejected with typed, flag-anchored
//! errors), target/oracle name validation, and help text. None of these
//! invocations run a campaign, so they stay fast.

use std::process::Command;

fn hs_chaos(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hs_chaos"))
        .args(args)
        .output()
        .expect("spawn hs_chaos")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = hs_chaos(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: hs_chaos"), "stdout: {text}");
    for needle in ["campaign", "exec", "shrink", "pipeline", "coord", "fleet"] {
        assert!(
            text.contains(needle),
            "usage must mention `{needle}`: {text}"
        );
    }
}

#[test]
fn zero_seed_is_rejected_with_a_typed_error() {
    let out = hs_chaos(&["campaign", "--seed", "0", "--schedules", "5"]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("hs_chaos: --seed: must be at least 1"),
        "stderr: {text}"
    );
}

#[test]
fn zero_schedules_are_rejected_with_a_typed_error() {
    let out = hs_chaos(&["campaign", "--seed", "7", "--schedules", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("hs_chaos: --schedules: must be at least 1"),
        "stderr: {text}"
    );
}

#[test]
fn non_integer_counts_name_the_flag_and_the_value() {
    let out = hs_chaos(&["campaign", "--seed", "7", "--schedules", "many"]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("--schedules: expected integer, got `many`"),
        "stderr: {text}"
    );
}

#[test]
fn unknown_targets_and_oracles_are_rejected_by_name() {
    let out = hs_chaos(&[
        "campaign",
        "--seed",
        "7",
        "--schedules",
        "5",
        "--targets",
        "pipeline,flee",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("unknown target `flee` (valid targets: pipeline, coord, fleet)"),
        "stderr: {text}"
    );

    let out = hs_chaos(&[
        "shrink",
        "--target",
        "fleet",
        "--plan",
        "probe_loss:replica1:2",
        "--oracle",
        "vibes",
        "--dir",
        "nowhere",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown oracle `vibes`"), "stderr: {text}");
}

#[test]
fn a_bad_fault_plan_is_rejected_with_the_parser_suggestion() {
    let out = hs_chaos(&[
        "exec",
        "--target",
        "fleet",
        "--plan",
        "probe_los:replica1:2",
        "--dir",
        "nowhere",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("did you mean `probe_loss`?"),
        "stderr: {text}"
    );
}
