//! Campaign-engine integration: a clean tree yields zero violations and
//! byte-identical reports across runs of the same seed, and a
//! deliberately broken invariant (`HS_CHAOS_BREAK`) is shrunk to a
//! one-entry `HS_FAULT` repro artifact.

use std::path::PathBuf;
use std::sync::Mutex;

use hs_chaos::{run_campaign, CampaignConfig, Target, BREAK_ENV};

/// The fault registry and telemetry sinks are process-global, and the
/// break hook is an env var: campaigns in this file must not overlap.
static CAMPAIGNS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CAMPAIGNS.lock().unwrap_or_else(|p| p.into_inner())
}

fn config(name: &str, targets: Vec<Target>, schedules: u64) -> CampaignConfig {
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&out_dir);
    CampaignConfig {
        seed: 0x4853,
        schedules,
        targets,
        intensity: 3,
        out_dir,
        subprocess: false,
        keep_dirs: false,
    }
}

#[test]
fn campaigns_are_clean_and_byte_reproducible() {
    let _guard = lock();
    std::env::remove_var(BREAK_ENV);
    let cfg_a = config("camp-a", vec![Target::Pipeline, Target::Fleet], 2);
    let a = run_campaign(&cfg_a).expect("campaign a");
    assert_eq!(
        a.violations(),
        0,
        "clean tree violated:\n{}",
        a.report.render()
    );
    assert!(
        a.records.iter().any(|r| !r.eval.injected.is_empty()),
        "campaign injected nothing"
    );

    let cfg_b = config("camp-b", vec![Target::Pipeline, Target::Fleet], 2);
    let b = run_campaign(&cfg_b).expect("campaign b");
    assert_eq!(
        a.report.render(),
        b.report.render(),
        "same seed rendered different reports"
    );
    let file_a = std::fs::read(cfg_a.out_dir.join("campaign.json")).expect("report a");
    let file_b = std::fs::read(cfg_b.out_dir.join("campaign.json")).expect("report b");
    assert_eq!(file_a, file_b, "campaign.json not byte-identical");
    // The report is relocatable evidence: no filesystem paths inside.
    let text = String::from_utf8(file_a).unwrap();
    assert!(
        !text.contains("camp-a"),
        "report leaked its out dir: {text}"
    );
}

#[test]
fn a_broken_invariant_is_shrunk_to_a_one_entry_repro() {
    let _guard = lock();
    std::env::set_var(BREAK_ENV, "conservation");
    let cfg = config("camp-broken", vec![Target::Fleet], 3);
    let outcome = run_campaign(&cfg);
    std::env::remove_var(BREAK_ENV);
    let outcome = outcome.expect("campaign");

    let failing: Vec<_> = outcome
        .records
        .iter()
        .filter(|r| !r.eval.violations.is_empty())
        .collect();
    assert!(!failing.is_empty(), "break hook fired no violations");
    for record in failing {
        let minimal = record.minimal.as_ref().expect("shrunk plan");
        // The broken oracle trips on any schedule with >= 1 injected
        // fault, so local minimality means exactly one firing entry.
        assert_eq!(
            minimal.faults.len(),
            1,
            "not locally minimal: {minimal} (from {})",
            record.plan
        );
        let repro = cfg
            .out_dir
            .join(format!("repro-fleet-{:04}.json", record.index));
        let text = std::fs::read_to_string(&repro).expect("repro artifact");
        assert!(
            text.contains(&format!("\"hs_fault\":\"HS_FAULT={minimal}\"")),
            "{text}"
        );
        assert!(text.contains("\"oracle\":\"conservation\""), "{text}");
        assert!(text.contains("hs_chaos exec --target fleet"), "{text}");
    }
    assert!(outcome.report.render().contains("\"result\":\"fail\""));
}
