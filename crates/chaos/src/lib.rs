//! Seeded chaos campaigns over the HeadStart workspace: an automated
//! adversary for the fault machinery that PRs 4, 7, and 9 built by
//! hand.
//!
//! The crate has four moving parts:
//!
//! 1. a **schedule generator** ([`generate_plan`]) that samples valid
//!    multi-entry fault plans from the registered kind×site vocabulary
//!    ([`hs_telemetry::faults::KIND_SITES`]) — the plans are never
//!    hardcoded, so a new fault kind registered in the vocabulary is
//!    picked up by the very next campaign;
//! 2. a **campaign runner** ([`run_campaign`]) that executes N seeded
//!    schedules per drivable target — journaled `hs_run` pipelines
//!    (kill/resume/corrupt/torn writes), coordinator worker fleets
//!    (`worker_lost`), and `hs-fleet` replays (`replica_*`,
//!    `probe_loss`) — in-process or via subprocess, in virtual time
//!    where the target supports it (the fleet), byte-reproducibly from
//!    a single campaign seed;
//! 3. **invariant oracles** ([`Oracle`]) evaluated from journals,
//!    telemetry, and artifacts: run completion, kill+resume bit-parity
//!    to the fault-free `final.hsck`, checkpoint-CRC integrity of every
//!    surviving artifact, ejection liveness (recovery observed once
//!    faults cease), no completed response past its deadline, request
//!    conservation (`completed + shed == submitted`), and telemetry
//!    schema cleanliness;
//! 4. a **delta-debugging shrinker** ([`shrink_plan`]) that minimizes a
//!    failing schedule to a locally-minimal plan and emits it as a
//!    ready-to-paste `HS_FAULT=` spec plus a `repro.json` artifact.
//!
//! Determinism is the load-bearing property: every schedule seed is
//! derived from the campaign seed by a pure mix, every target replays
//! deterministically under a fixed plan, and the campaign report
//! contains only seed-derived values — two runs of
//! `hs_chaos campaign --seed S --schedules N` produce byte-identical
//! reports and repro artifacts.
//!
//! The `HS_CHAOS_BREAK=<oracle>` environment hook deliberately breaks
//! one oracle (it reports a violation whenever the schedule injected at
//! least one fault) so CI can assert the violation→shrink→repro path
//! end to end without shipping a real bug.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use hs_fleet::{drive_fleet_open, BalancerPolicy, FleetConfig, FleetEngine, FleetOutcome};
use hs_nn::infer::SharedNetwork;
use hs_nn::{checkpoint, models};
use hs_obs::Val;
use hs_runner::{
    resume_run, run, Budget, ModelChoice, ModelKind, RunnerConfig, RunnerError, FINAL_CHECKPOINT,
};
use hs_serve::{LoadSpec, ServeConfig};
use hs_telemetry::faults::{self, Fault, FaultPlan};
use hs_telemetry::{schema, Level, TelemetryConfig};
use hs_tensor::{Rng, Shape, Tensor};

/// Environment hook that deliberately breaks the named oracle: with
/// `HS_CHAOS_BREAK=conservation`, the conservation oracle reports a
/// violation on every schedule that injected at least one fault. Used
/// by CI to prove the shrinker produces a minimal repro; never set in
/// real campaigns.
pub const BREAK_ENV: &str = "HS_CHAOS_BREAK";

/// Worker-thread count used by the coordinator target's pipelines.
pub const COORD_WORKERS: usize = 2;

// ---------------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------------

/// A drivable chaos target: a subsystem the campaign knows how to run
/// under an armed fault plan and check invariants on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// A journaled single-threaded `hs_run` pipeline (LeNet, smoke
    /// budget): kill/resume, IO errors, torn writes, checkpoint
    /// corruption, NaN rewards.
    Pipeline,
    /// The same pipeline with a sharded `hs-coord` evaluation worker
    /// fleet: `worker_lost` mid-batch, still bit-parity to serial.
    Coord,
    /// An in-process `hs-fleet` replay on the virtual clock: replica
    /// crash/slow/flap and probe loss under an open-loop load.
    Fleet,
}

impl Target {
    /// Every target, in campaign execution order.
    pub const ALL: [Target; 3] = [Target::Pipeline, Target::Coord, Target::Fleet];

    /// Stable CLI / report name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Target::Pipeline => "pipeline",
            Target::Coord => "coord",
            Target::Fleet => "fleet",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Target> {
        match name {
            "pipeline" => Some(Target::Pipeline),
            "coord" => Some(Target::Coord),
            "fleet" => Some(Target::Fleet),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

/// Replica count of the fleet target's scenario (fault sites are
/// sampled over `replica0..replica{N-1}`).
pub const FLEET_REPLICAS: usize = 3;

/// Derives the seed of schedule `index` for `target` from the campaign
/// seed — a pure splitmix64 mix, so campaigns are reproducible from one
/// number and targets never share schedule streams.
#[must_use]
pub fn schedule_seed(campaign_seed: u64, target: Target, index: u64) -> u64 {
    let tag = match target {
        Target::Pipeline => 0x70697065,
        Target::Coord => 0x636f6f72,
        Target::Fleet => 0x666c6565,
    };
    splitmix(campaign_seed ^ splitmix(tag) ^ splitmix(index.wrapping_add(1)))
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The sampleable `(kind, site, max_nth)` vocabulary of one target,
/// discovered from the fault registry's [`faults::KIND_SITES`] table —
/// not hardcoded, so newly registered kinds flow into campaigns.
#[must_use]
pub fn vocabulary(target: Target) -> Vec<(String, String, u64)> {
    let mut vocab = Vec::new();
    match target {
        Target::Pipeline => {
            // Sites a journaled LeNet smoke run actually consults.
            let sites = [
                "checkpoint",
                "artifact",
                "journal",
                "metrics",
                "pretrain",
                "prune_unit",
                "finalize",
                "layer",
            ];
            // How often one smoke pass actually hits each site, so
            // sampled hit numbers stand a real chance of firing
            // (unfired entries are valid but test nothing).
            let site_hits = |site: &str| match site {
                "checkpoint" => 4, // pretrained + 2 units + final
                "journal" => 4,    // initial save + per-unit + finalize
                "layer" => 4,      // once per REINFORCE episode
                "prune_unit" => 2, // one crash point per pruned unit
                _ => 1,            // artifact/metrics/pretrain/finalize
            };
            for (kind, kind_sites) in faults::KIND_SITES {
                for site in kind_sites {
                    if !sites.contains(site) {
                        continue;
                    }
                    // `corrupt`/`truncate` succeed silently, so a hit on
                    // the *last* checkpoint write (final.hsck, which
                    // nothing re-reads) would corrupt the run's output
                    // with no chance of rewind. The smoke pipeline
                    // writes pretrained + two units before final, so
                    // capping their hit at 3 keeps the tail clean while
                    // still covering every earlier write. Every other
                    // kind fails loudly and is re-driven by resume.
                    let max_nth = match kind {
                        "corrupt" | "truncate" => 3,
                        _ => site_hits(site),
                    };
                    vocab.push((kind.to_string(), (*site).to_string(), max_nth));
                }
            }
        }
        Target::Coord => {
            for (kind, kind_sites) in faults::KIND_SITES {
                match kind {
                    "worker_lost" => {
                        for site in kind_sites {
                            vocab.push((kind.to_string(), (*site).to_string(), 6));
                        }
                    }
                    "kill_after" => {
                        for site in kind_sites {
                            vocab.push((kind.to_string(), (*site).to_string(), 2));
                        }
                    }
                    _ => {}
                }
            }
        }
        Target::Fleet => {
            for (kind, _) in faults::KIND_SITES {
                if !faults::replica_scoped(kind) {
                    continue;
                }
                for k in 0..FLEET_REPLICAS {
                    vocab.push((kind.to_string(), format!("replica{k}"), 8));
                }
            }
        }
    }
    vocab
}

/// Samples one valid multi-entry fault plan for `target` from `seed`.
/// `intensity` caps the entry count (the draw is 1..=intensity);
/// duplicate `(kind, site, nth)` triples are never produced, matching
/// the parser's duplicate rejection.
#[must_use]
pub fn generate_plan(target: Target, seed: u64, intensity: usize) -> FaultPlan {
    let vocab = vocabulary(target);
    let mut rng = Rng::seed_from(seed);
    let want = 1 + rng.below(intensity.max(1));
    let mut faults = Vec::new();
    // Rejection-sample without duplicates; the attempt bound keeps the
    // loop total even when intensity approaches the vocabulary size.
    for _ in 0..want * 8 {
        if faults.len() == want {
            break;
        }
        let (kind, site, max_nth) = &vocab[rng.below(vocab.len())];
        let fault = Fault {
            kind: kind.clone(),
            site: site.clone(),
            nth: 1 + rng.below(*max_nth as usize) as u64,
        };
        if !faults.contains(&fault) {
            faults.push(fault);
        }
    }
    FaultPlan { faults }
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// One violated invariant: which oracle flagged it and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Oracle name (`completion`, `parity`, `integrity`, `liveness`,
    /// `deadline`, `conservation`, `telemetry`).
    pub oracle: String,
    /// Human-readable evidence.
    pub detail: String,
}

/// The oracle names a campaign evaluates, for CLI validation and docs.
pub const ORACLES: [&str; 7] = [
    "completion",
    "parity",
    "integrity",
    "liveness",
    "deadline",
    "conservation",
    "telemetry",
];

/// The evaluated result of one schedule: which faults actually fired
/// (from `fault_injected` telemetry) and every invariant violation.
#[derive(Debug, Clone, Default)]
pub struct ScheduleEval {
    /// `(kind, site)` of each fired fault, in firing order.
    pub injected: Vec<(String, String)>,
    /// Violations, empty on a clean schedule.
    pub violations: Vec<Violation>,
}

/// Pipeline fault kinds whose effects must be invisible in the final
/// model bytes (the parity oracle applies only to plans made purely of
/// these). `nan_reward` is excluded on purpose: it perturbs the search
/// *input*, so a different — but still valid and reproducible — model
/// is the expected outcome, not a bug.
fn parity_preserving(kind: &str) -> bool {
    kind != "nan_reward"
}

/// Reads the `HS_CHAOS_BREAK` hook.
fn break_oracle() -> Option<String> {
    std::env::var(BREAK_ENV).ok().filter(|s| !s.is_empty())
}

/// Telemetry-stream oracle helpers: parse the schedule's JSONL, collect
/// fired faults, and lint every line against the schema.
fn scan_telemetry(jsonl: &Path, eval: &mut ScheduleEval) -> Vec<hs_obs::EventRec> {
    let text = std::fs::read_to_string(jsonl).unwrap_or_default();
    for (i, line) in text.lines().enumerate() {
        if let Err(e) = schema::validate_line(line) {
            eval.violations.push(Violation {
                oracle: "telemetry".to_string(),
                detail: format!("line {}: {e}", i + 1),
            });
        }
    }
    let events = match hs_obs::load_events(&text) {
        Ok(events) => events,
        Err(e) => {
            eval.violations.push(Violation {
                oracle: "telemetry".to_string(),
                detail: format!("unreadable event stream: {e}"),
            });
            Vec::new()
        }
    };
    for e in events.iter().filter(|e| e.kind == "fault_injected") {
        if let (Some(kind), Some(site)) = (e.str_field("fault"), e.str_field("site")) {
            eval.injected.push((kind.to_string(), site.to_string()));
        }
    }
    events
}

/// Applies the deliberate-break hook: the named oracle reports a
/// violation whenever the schedule injected at least one fault.
fn apply_break_hook(eval: &mut ScheduleEval) {
    if let Some(oracle) = break_oracle() {
        if !eval.injected.is_empty() {
            eval.violations.push(Violation {
                oracle,
                detail: format!(
                    "deliberately broken by {BREAK_ENV} ({} fault(s) injected)",
                    eval.injected.len()
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Pipeline / coord target
// ---------------------------------------------------------------------------

/// The pipeline configuration every pipeline/coord schedule runs: a
/// journaled LeNet smoke run with artifact + metrics outputs, so the
/// `checkpoint`, `journal`, `artifact`, and `metrics` fault sites are
/// all live.
#[must_use]
pub fn pipeline_config(dir: &Path, workers: usize) -> RunnerConfig {
    let mut cfg = RunnerConfig::new("chaos");
    cfg.model = ModelChoice::new(ModelKind::LeNet, 1.0);
    cfg.budget = Budget::smoke();
    cfg.workers = workers;
    cfg.run_dir = Some(dir.to_path_buf());
    cfg.artifact = Some(dir.join("run.json"));
    cfg.metrics = Some(dir.join("metrics.prom"));
    cfg.telemetry = Some(dir.join("telemetry.jsonl"));
    cfg
}

/// Runs one pipeline/coord schedule in `dir` under `plan` and evaluates
/// the pipeline oracles. `reference` is the fault-free `final.hsck`
/// bytes the parity oracle compares against (skipped for plans
/// containing non-parity kinds such as `nan_reward`).
///
/// The drive loop mirrors an operator babysitting a crashing job: run,
/// and on every failure resume from the journal (falling back to a
/// fresh run when the journal itself is the casualty). Each armed fault
/// fires at most once, so `plan.len() + 2` attempts always suffice —
/// exceeding them is itself a `completion` violation.
pub fn run_pipeline_schedule(
    dir: &Path,
    workers: usize,
    plan: &FaultPlan,
    reference: &[u8],
) -> ScheduleEval {
    let mut eval = ScheduleEval::default();
    let cfg = pipeline_config(dir, workers);
    let jsonl = dir.join("telemetry.jsonl");
    let _ = std::fs::create_dir_all(dir);
    let _ = hs_telemetry::configure(&TelemetryConfig {
        stderr_level: Some(Level::Error),
        jsonl: Some(jsonl.clone()),
    });

    faults::arm(plan.clone());
    let mut result = run(&cfg);
    let mut attempts = 0;
    while result.is_err() && attempts < plan.faults.len() + 2 {
        attempts += 1;
        // Harvest the failed pass's stream *before* resuming: the
        // resume reconfigures telemetry onto the same path, which
        // starts a fresh (truncated) stream — scanning later would
        // lose the pass's fault_injected evidence.
        hs_telemetry::flush();
        let _ = scan_telemetry(&jsonl, &mut eval);
        result = match resume_run(dir) {
            // The journal itself was the casualty (torn write, or the
            // crash landed before the first save): start the run over —
            // a fresh journaled run replaces the directory's state and
            // is deterministic, so parity still holds.
            Err(RunnerError::Journal(_)) => run(&cfg),
            other => other,
        };
    }
    faults::disarm();
    hs_telemetry::flush();

    if let Err(e) = &result {
        eval.violations.push(Violation {
            oracle: "completion".to_string(),
            detail: format!("run did not complete after {attempts} resumes: {e}"),
        });
    }
    let _events = scan_telemetry(&jsonl, &mut eval);

    if result.is_ok() {
        // Parity: the surviving final model is bit-identical to the
        // fault-free reference (for parity-preserving plans).
        if plan.faults.iter().all(|f| parity_preserving(&f.kind)) {
            match std::fs::read(dir.join(FINAL_CHECKPOINT)) {
                Ok(bytes) if bytes == reference => {}
                Ok(_) => eval.violations.push(Violation {
                    oracle: "parity".to_string(),
                    detail: "final.hsck differs from the fault-free reference".to_string(),
                }),
                Err(e) => eval.violations.push(Violation {
                    oracle: "parity".to_string(),
                    detail: format!("final.hsck unreadable: {e}"),
                }),
            }
        }
        check_artifact_integrity(dir, &mut eval);
    }
    apply_break_hook(&mut eval);
    eval
}

/// Checkpoint-CRC integrity of every surviving artifact in a completed
/// run directory. Silent-corruption faults (`corrupt`/`truncate`) are
/// *expected* to leave dirt in superseded mid-run checkpoints — those
/// failures are excused when such a fault fired at the `checkpoint`
/// site — but `final.hsck` must always verify (the generator never
/// lands a silent corruption on the last write), and the JSON artifacts
/// of a completed run must always parse.
fn check_artifact_integrity(dir: &Path, eval: &mut ScheduleEval) {
    let dirt_excused = eval.injected.iter().any(|(kind, site)| {
        site == "checkpoint" && matches!(kind.as_str(), "corrupt" | "truncate")
    });
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".hsck"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    for name in names {
        if let Err(e) = checkpoint::load(dir.join(&name)) {
            if name != FINAL_CHECKPOINT && dirt_excused {
                continue;
            }
            eval.violations.push(Violation {
                oracle: "integrity".to_string(),
                detail: format!("{name} fails its checksum: {e}"),
            });
        }
    }
    for name in ["run.json", "run.journal.json"] {
        let path = dir.join(name);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                if let Err(e) = schema::parse(&text) {
                    eval.violations.push(Violation {
                        oracle: "integrity".to_string(),
                        detail: format!("{name} does not parse: {e}"),
                    });
                }
            }
            Err(e) => eval.violations.push(Violation {
                oracle: "integrity".to_string(),
                detail: format!("{name} unreadable: {e}"),
            }),
        }
    }
}

/// Runs the fault-free reference pipeline once into `dir` and returns
/// the `final.hsck` bytes every parity check compares against.
///
/// # Errors
///
/// Returns a message when the reference itself fails — the campaign
/// cannot proceed without it.
pub fn reference_final(dir: &Path) -> Result<Vec<u8>, String> {
    faults::disarm();
    let cfg = pipeline_config(dir, 1);
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let _ = hs_telemetry::configure(&TelemetryConfig {
        stderr_level: Some(Level::Error),
        jsonl: Some(dir.join("telemetry.jsonl")),
    });
    run(&cfg).map_err(|e| format!("reference run failed: {e}"))?;
    std::fs::read(dir.join(FINAL_CHECKPOINT)).map_err(|e| format!("reference final.hsck: {e}"))
}

// ---------------------------------------------------------------------------
// Fleet target
// ---------------------------------------------------------------------------

const FLEET_PROBE_EVERY: u64 = 2_000;

/// The fleet target's scenario: three tiny replicas under an arrival
/// rate that keeps queues deep enough for crashes to strand work.
fn fleet_scenario() -> FleetConfig {
    FleetConfig {
        replicas: FLEET_REPLICAS,
        policy: BalancerPolicy::RoundRobin,
        probe_every: FLEET_PROBE_EVERY,
        suspect_after: 1,
        eject_after: 1,
        recover_after: 2,
        hedge_after: 5_000,
        hedge_budget: 4,
        slow_multiplier: 4,
        tenant_quota: 0,
        shed_min_class: usize::MAX,
        trace_seed: 0x4853,
        serve: ServeConfig {
            queue_capacity: 8,
            batch_max: 2,
            linger: 1_000,
            base_cost: 1_000,
            per_item_cost: 1_000,
            batch_timeout: 10_000,
            breaker_threshold: 2,
            breaker_cooldown: 20_000,
            slow_factor: 20,
            pruned_cost_scale: 0.25,
            degrade_high: 6,
            overload_strikes: 2,
            recover_low: 1,
            recovery_batches: 2,
            trace_seed: 0x4853,
            slo_target: 0.9,
            slo_window: 20,
            replica: None,
        },
    }
}

/// Runs one fleet schedule (virtual time, in-process) under `plan`,
/// with telemetry routed to `jsonl`, and evaluates the fleet oracles:
/// conservation, deadline, ejection liveness, telemetry cleanliness.
pub fn run_fleet_schedule(jsonl: &Path, seed: u64, plan: &FaultPlan) -> ScheduleEval {
    let mut eval = ScheduleEval::default();
    if let Some(dir) = jsonl.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = hs_telemetry::configure(&TelemetryConfig {
        stderr_level: Some(Level::Error),
        jsonl: Some(jsonl.to_path_buf()),
    });

    let cfg = fleet_scenario();
    let mut rng = Rng::seed_from(21);
    let dense = models::lenet(1, 4, 8, 0.5, &mut rng).expect("dense net");
    let pruned = models::lenet(1, 4, 8, 0.5, &mut rng).expect("pruned net");
    let inputs = Tensor::randn(Shape::d4(6, 1, 8, 8), &mut Rng::seed_from(33));
    let mut fleet = match FleetEngine::new(
        cfg,
        SharedNetwork::new(dense),
        SharedNetwork::new(pruned),
        inputs,
    ) {
        Ok(fleet) => fleet,
        Err(e) => {
            eval.violations.push(Violation {
                oracle: "completion".to_string(),
                detail: format!("fleet construction failed: {e}"),
            });
            return eval;
        }
    };
    let profile = LoadSpec {
        requests: 48,
        gap: 500,
        deadline: 30_000,
        seed,
        tenants: 2,
        ..LoadSpec::default()
    }
    .open_profile();

    faults::arm(plan.clone());
    let outcomes = drive_fleet_open(&mut fleet, &profile);
    faults::disarm();

    let outcomes = match outcomes {
        Ok(outcomes) => outcomes,
        Err(e) => {
            hs_telemetry::flush();
            eval.violations.push(Violation {
                oracle: "completion".to_string(),
                detail: format!("fleet drive failed: {e}"),
            });
            return eval;
        }
    };

    // Faults have ceased (each entry fires once and the registry is
    // disarmed): give the prober enough quiet rounds for every surviving
    // replica to walk Ejected -> Recovered -> Healthy.
    let horizon = outcomes
        .iter()
        .filter_map(|o| match o {
            FleetOutcome::Completed { response, .. } => Some(response.completed),
            FleetOutcome::Rejected(_) => None,
        })
        .max()
        .unwrap_or(0)
        .max(profile.entries.last().map_or(0, |e| e.at));
    let quiet_rounds = (cfg.suspect_after + cfg.eject_after + 2 * cfg.recover_after + 2) as u64;
    for round in 1..=quiet_rounds {
        let _ = fleet.tick(horizon + round * cfg.probe_every);
    }
    hs_telemetry::flush();

    let events = scan_telemetry(jsonl, &mut eval);

    // Conservation: every submitted request gets exactly one typed
    // terminal outcome, and the counters agree.
    let summary = fleet.summary();
    if summary.completed + summary.rejected_total() != summary.submitted {
        eval.violations.push(Violation {
            oracle: "conservation".to_string(),
            detail: format!(
                "completed {} + shed {} != submitted {}",
                summary.completed,
                summary.rejected_total(),
                summary.submitted
            ),
        });
    }
    let mut ids: Vec<u64> = outcomes.iter().map(FleetOutcome::id).collect();
    ids.sort_unstable();
    let expect: Vec<u64> = (0..profile.entries.len() as u64).collect();
    if ids != expect {
        eval.violations.push(Violation {
            oracle: "conservation".to_string(),
            detail: format!(
                "terminal outcomes cover {} of {} request ids (dupes or losses)",
                ids.len(),
                expect.len()
            ),
        });
    }

    // Deadline: no completed response past its absolute deadline.
    let deadline_of: BTreeMap<u64, u64> =
        profile.entries.iter().map(|e| (e.id, e.deadline)).collect();
    for o in &outcomes {
        if let FleetOutcome::Completed { response, .. } = o {
            if response.completed > deadline_of[&response.id] {
                eval.violations.push(Violation {
                    oracle: "deadline".to_string(),
                    detail: format!(
                        "request {} completed at {} past its deadline {}",
                        response.id, response.completed, deadline_of[&response.id]
                    ),
                });
            }
        }
    }

    // Liveness: replicas the plan left *up* (not crashed, not flapped
    // down an odd number of times) must be routable again after the
    // quiet rounds, and every ejection of such a replica must have a
    // recovery on the record.
    let mut crashed = BTreeSet::new();
    let mut flaps: BTreeMap<usize, u64> = BTreeMap::new();
    for (kind, site) in &eval.injected {
        if let Some(k) = site
            .strip_prefix("replica")
            .and_then(|id| id.parse::<usize>().ok())
        {
            match kind.as_str() {
                "replica_crash" => {
                    crashed.insert(k);
                }
                "replica_flap" => *flaps.entry(k).or_insert(0) += 1,
                _ => {}
            }
        }
    }
    for k in 0..FLEET_REPLICAS {
        let left_down = crashed.contains(&k) || flaps.get(&k).is_some_and(|n| n % 2 == 1);
        if left_down {
            continue;
        }
        if !fleet.health(k).routable() {
            eval.violations.push(Violation {
                oracle: "liveness".to_string(),
                detail: format!(
                    "replica {k} is still unroutable {quiet_rounds} probe rounds after faults ceased"
                ),
            });
        }
    }
    let ejected_up: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.kind == "replica_health" && e.str_field("to") == Some("ejected"))
        .filter_map(|e| e.num_field("replica"))
        .map(|r| r as u64)
        .filter(|r| {
            let k = *r as usize;
            !(crashed.contains(&k) || flaps.get(&k).is_some_and(|n| n % 2 == 1))
        })
        .collect();
    for r in ejected_up {
        let recovered = events.iter().any(|e| {
            e.kind == "replica_health"
                && e.num_field("replica") == Some(r as f64)
                && e.str_field("to") == Some("recovered")
        });
        if !recovered {
            eval.violations.push(Violation {
                oracle: "liveness".to_string(),
                detail: format!("replica {r} was ejected but never recovered after faults ceased"),
            });
        }
    }
    apply_break_hook(&mut eval);
    eval
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// A campaign's knobs. `schedules` is per target.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed; every schedule seed derives from it.
    pub seed: u64,
    /// Schedules to run per target.
    pub schedules: u64,
    /// Targets to sweep.
    pub targets: Vec<Target>,
    /// Max fault entries per schedule (draw is 1..=intensity).
    pub intensity: usize,
    /// Working directory: per-schedule run dirs, telemetry, report, and
    /// repro artifacts all land here.
    pub out_dir: PathBuf,
    /// Run pipeline-family schedules in a child `hs_chaos exec` process
    /// instead of in-process.
    pub subprocess: bool,
    /// Keep clean schedules' run directories (default: only failing
    /// schedules' directories survive, to bound disk usage).
    pub keep_dirs: bool,
}

/// One executed schedule with its evaluation.
#[derive(Debug, Clone)]
pub struct ScheduleRecord {
    /// Which target ran it.
    pub target: Target,
    /// Schedule index within the target (0-based).
    pub index: u64,
    /// The derived schedule seed.
    pub seed: u64,
    /// The generated plan.
    pub plan: FaultPlan,
    /// The evaluation (fired faults + violations).
    pub eval: ScheduleEval,
    /// The locally-minimal failing plan, when the schedule violated an
    /// oracle and the shrinker ran.
    pub minimal: Option<FaultPlan>,
}

/// A finished campaign: every schedule record plus the deterministic
/// report value.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Every schedule, in execution order.
    pub records: Vec<ScheduleRecord>,
    /// The byte-reproducible report (what `campaign.json` holds).
    pub report: Val,
}

impl CampaignOutcome {
    /// Total violations across the campaign.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.records.iter().map(|r| r.eval.violations.len()).sum()
    }
}

/// Executes one schedule of `target` in/under `dir` and returns its
/// evaluation. This is the single entry point both the in-process
/// campaign and the `hs_chaos exec` subprocess worker share.
pub fn exec_schedule(
    target: Target,
    plan: &FaultPlan,
    seed: u64,
    dir: &Path,
    reference: &[u8],
) -> ScheduleEval {
    match target {
        Target::Pipeline => run_pipeline_schedule(dir, 1, plan, reference),
        Target::Coord => run_pipeline_schedule(dir, COORD_WORKERS, plan, reference),
        Target::Fleet => run_fleet_schedule(&dir.join("telemetry.jsonl"), seed, plan),
    }
}

/// Serializes a [`ScheduleEval`] as JSON (the `exec --result` contract
/// between the campaign parent and its subprocess workers).
#[must_use]
pub fn eval_to_json(eval: &ScheduleEval) -> Val {
    Val::Obj(vec![
        (
            "injected".to_string(),
            Val::Arr(
                eval.injected
                    .iter()
                    .map(|(kind, site)| {
                        Val::Obj(vec![
                            ("kind".to_string(), Val::str(kind.clone())),
                            ("site".to_string(), Val::str(site.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations".to_string(),
            Val::Arr(
                eval.violations
                    .iter()
                    .map(|v| {
                        Val::Obj(vec![
                            ("oracle".to_string(), Val::str(v.oracle.clone())),
                            ("detail".to_string(), Val::str(v.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses an `exec --result` JSON back into a [`ScheduleEval`].
///
/// # Errors
///
/// Returns a message when the text is not a result document.
pub fn eval_from_json(text: &str) -> Result<ScheduleEval, String> {
    let value = schema::parse(text)?;
    let obj = value.as_obj().ok_or("result is not an object")?;
    let mut eval = ScheduleEval::default();
    for (key, val) in obj {
        let schema::Json::Arr(items) = val else {
            return Err(format!("{key} is not an array"));
        };
        for item in items {
            let fields = item.as_obj().ok_or("result entry is not an object")?;
            let get = |name: &str| -> Result<String, String> {
                fields
                    .get(name)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("result entry missing `{name}`"))
            };
            match key.as_str() {
                "injected" => eval.injected.push((get("kind")?, get("site")?)),
                "violations" => eval.violations.push(Violation {
                    oracle: get("oracle")?,
                    detail: get("detail")?,
                }),
                other => return Err(format!("unknown result key `{other}`")),
            }
        }
    }
    Ok(eval)
}

/// Runs one schedule in a child `hs_chaos exec` process (own address
/// space, own fault registry) and parses its `--result` file.
fn exec_in_subprocess(
    target: Target,
    plan: &FaultPlan,
    seed: u64,
    dir: &Path,
    reference_path: &Path,
) -> Result<ScheduleEval, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let result_path = dir.join("result.json");
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let output = std::process::Command::new(exe)
        .args([
            "exec",
            "--target",
            target.as_str(),
            "--plan",
            &plan.to_string(),
            "--seed",
            &seed.to_string(),
            "--dir",
            &dir.to_string_lossy(),
            "--reference",
            &reference_path.to_string_lossy(),
            "--result",
            &result_path.to_string_lossy(),
        ])
        .output()
        .map_err(|e| format!("spawn hs_chaos exec: {e}"))?;
    let text = std::fs::read_to_string(&result_path).map_err(|e| {
        format!(
            "exec worker left no result (status {:?}, stderr: {}): {e}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        )
    })?;
    eval_from_json(&text)
}

/// Runs the full campaign: generate → execute → check → (on violation)
/// shrink + emit repro. Returns every record plus the deterministic
/// report; `campaign.json` and any `repro-*.json` are written into
/// `out_dir`.
///
/// # Errors
///
/// Returns a message when the campaign cannot run at all (reference run
/// failure, unwritable out dir) — individual schedule violations are
/// *data*, not errors.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignOutcome, String> {
    std::fs::create_dir_all(&cfg.out_dir).map_err(|e| format!("{}: {e}", cfg.out_dir.display()))?;
    let needs_reference = cfg
        .targets
        .iter()
        .any(|t| matches!(t, Target::Pipeline | Target::Coord));
    let reference_path = cfg.out_dir.join("reference").join(FINAL_CHECKPOINT);
    let reference = if needs_reference {
        reference_final(&cfg.out_dir.join("reference"))?
    } else {
        Vec::new()
    };

    let mut records = Vec::new();
    for &target in &cfg.targets {
        for index in 0..cfg.schedules {
            let seed = schedule_seed(cfg.seed, target, index);
            let plan = generate_plan(target, seed, cfg.intensity);
            let dir = cfg
                .out_dir
                .join(target.as_str())
                .join(format!("s{index:04}"));
            let _ = std::fs::remove_dir_all(&dir);
            let eval = if cfg.subprocess && target != Target::Fleet {
                exec_in_subprocess(target, &plan, seed, &dir, &reference_path)?
            } else {
                exec_schedule(target, &plan, seed, &dir, &reference)
            };
            let minimal = if eval.violations.is_empty() {
                None
            } else {
                let oracle = eval.violations[0].oracle.clone();
                let shrink_dir = cfg
                    .out_dir
                    .join(format!("shrink-{}-{index:04}", target.as_str()));
                let minimal = shrink_plan(&plan, |candidate| {
                    let _ = std::fs::remove_dir_all(&shrink_dir);
                    let eval = exec_schedule(target, candidate, seed, &shrink_dir, &reference);
                    eval.violations.iter().any(|v| v.oracle == oracle)
                });
                let _ = std::fs::remove_dir_all(&shrink_dir);
                Some(minimal)
            };
            let record = ScheduleRecord {
                target,
                index,
                seed,
                plan,
                eval,
                minimal,
            };
            if record.eval.violations.is_empty() {
                if !cfg.keep_dirs {
                    let _ = std::fs::remove_dir_all(&dir);
                }
            } else {
                write_repro(&cfg.out_dir, cfg.seed, &record)
                    .map_err(|e| format!("repro artifact: {e}"))?;
            }
            records.push(record);
        }
    }

    let report = campaign_report(cfg, &records);
    std::fs::write(cfg.out_dir.join("campaign.json"), report.render())
        .map_err(|e| format!("campaign.json: {e}"))?;
    Ok(CampaignOutcome { records, report })
}

/// Writes the ready-to-paste repro artifact for a violating schedule.
fn write_repro(out_dir: &Path, campaign_seed: u64, record: &ScheduleRecord) -> std::io::Result<()> {
    let minimal = record.minimal.as_ref().unwrap_or(&record.plan).to_string();
    let first = &record.eval.violations[0];
    let doc = Val::Obj(vec![
        ("target".to_string(), Val::str(record.target.as_str())),
        (
            "campaign_seed".to_string(),
            Val::str(format!("{campaign_seed}")),
        ),
        ("schedule".to_string(), Val::Num(record.index as f64)),
        (
            "schedule_seed".to_string(),
            Val::str(format!("{}", record.seed)),
        ),
        (
            "original_plan".to_string(),
            Val::str(record.plan.to_string()),
        ),
        ("minimal_plan".to_string(), Val::str(minimal.clone())),
        (
            "hs_fault".to_string(),
            Val::str(format!("HS_FAULT={minimal}")),
        ),
        ("oracle".to_string(), Val::str(first.oracle.clone())),
        ("detail".to_string(), Val::str(first.detail.clone())),
        (
            "command".to_string(),
            Val::str(format!(
                "hs_chaos exec --target {} --plan '{minimal}' --seed {} --dir <RUN_DIR>",
                record.target.as_str(),
                record.seed
            )),
        ),
    ]);
    std::fs::write(
        out_dir.join(format!(
            "repro-{}-{:04}.json",
            record.target.as_str(),
            record.index
        )),
        doc.render(),
    )
}

/// Builds the deterministic campaign report: only seed-derived values —
/// schedule counts, plans, fired-fault tallies, violations — never
/// wall-clock or filesystem paths, so two runs of the same campaign
/// render byte-identical documents.
#[must_use]
pub fn campaign_report(cfg: &CampaignConfig, records: &[ScheduleRecord]) -> Val {
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    for record in records {
        for (kind, _) in &record.eval.injected {
            *by_kind.entry(kind.clone()).or_insert(0) += 1;
        }
    }
    let mut targets = Vec::new();
    for &target in &cfg.targets {
        let of_target: Vec<&ScheduleRecord> =
            records.iter().filter(|r| r.target == target).collect();
        targets.push(Val::Obj(vec![
            ("target".to_string(), Val::str(target.as_str())),
            ("schedules".to_string(), Val::Num(of_target.len() as f64)),
            (
                "fault_entries".to_string(),
                Val::Num(
                    of_target
                        .iter()
                        .map(|r| r.plan.faults.len() as u64)
                        .sum::<u64>() as f64,
                ),
            ),
            (
                "faults_injected".to_string(),
                Val::Num(
                    of_target
                        .iter()
                        .map(|r| r.eval.injected.len() as u64)
                        .sum::<u64>() as f64,
                ),
            ),
            (
                "violations".to_string(),
                Val::Num(
                    of_target
                        .iter()
                        .map(|r| r.eval.violations.len() as u64)
                        .sum::<u64>() as f64,
                ),
            ),
        ]));
    }
    let violations = records
        .iter()
        .flat_map(|r| {
            r.eval.violations.iter().map(move |v| {
                Val::Obj(vec![
                    ("target".to_string(), Val::str(r.target.as_str())),
                    ("schedule".to_string(), Val::Num(r.index as f64)),
                    ("seed".to_string(), Val::str(format!("{}", r.seed))),
                    ("plan".to_string(), Val::str(r.plan.to_string())),
                    (
                        "minimal_plan".to_string(),
                        Val::str(r.minimal.as_ref().unwrap_or(&r.plan).to_string()),
                    ),
                    ("oracle".to_string(), Val::str(v.oracle.clone())),
                    ("detail".to_string(), Val::str(v.detail.clone())),
                ])
            })
        })
        .collect();
    let total_violations: u64 = records.iter().map(|r| r.eval.violations.len() as u64).sum();
    Val::Obj(vec![
        (
            "campaign".to_string(),
            Val::Obj(vec![
                ("seed".to_string(), Val::str(format!("{}", cfg.seed))),
                (
                    "schedules_per_target".to_string(),
                    Val::Num(cfg.schedules as f64),
                ),
                ("intensity".to_string(), Val::Num(cfg.intensity as f64)),
                (
                    "targets".to_string(),
                    Val::Arr(cfg.targets.iter().map(|t| Val::str(t.as_str())).collect()),
                ),
                (
                    "mode".to_string(),
                    Val::str(if cfg.subprocess {
                        "subprocess"
                    } else {
                        "in-process"
                    }),
                ),
            ]),
        ),
        ("targets".to_string(), Val::Arr(targets)),
        (
            "injected_by_kind".to_string(),
            Val::Obj(
                by_kind
                    .into_iter()
                    .map(|(kind, count)| (kind, Val::Num(count as f64)))
                    .collect(),
            ),
        ),
        ("violations".to_string(), Val::Arr(violations)),
        (
            "result".to_string(),
            Val::str(if total_violations == 0 {
                "pass"
            } else {
                "fail"
            }),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// Delta-debugs `plan` down to a locally-minimal failing plan:
/// repeatedly drops the first single entry whose removal keeps
/// `still_fails` true, until no single-entry removal does. The result
/// is locally minimal by construction — removing any one remaining
/// entry makes the failure disappear — and the predicate is consulted
/// O(n²) times in the worst case, which is fine for campaign-sized
/// plans.
pub fn shrink_plan<F>(plan: &FaultPlan, mut still_fails: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut current = plan.clone();
    loop {
        let mut reduced = false;
        for i in 0..current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_seeds_are_stable_and_stream_separated() {
        let a = schedule_seed(0x4853, Target::Pipeline, 0);
        assert_eq!(a, schedule_seed(0x4853, Target::Pipeline, 0), "not pure");
        assert_ne!(a, schedule_seed(0x4853, Target::Coord, 0));
        assert_ne!(a, schedule_seed(0x4853, Target::Fleet, 0));
        assert_ne!(a, schedule_seed(0x4853, Target::Pipeline, 1));
        assert_ne!(a, schedule_seed(0x4854, Target::Pipeline, 0));
    }

    #[test]
    fn generated_plans_are_valid_deterministic_and_duplicate_free() {
        for target in Target::ALL {
            for i in 0..64u64 {
                let seed = schedule_seed(7, target, i);
                let plan = generate_plan(target, seed, 4);
                assert!(!plan.faults.is_empty(), "{target:?} schedule {i} is empty");
                assert!(plan.faults.len() <= 4);
                // Round-trips through the parser (validity + no dupes).
                let reparsed = FaultPlan::parse(&plan.to_string())
                    .unwrap_or_else(|e| panic!("{target:?} schedule {i}: {e}"));
                assert_eq!(reparsed, plan);
                // Deterministic from the seed.
                assert_eq!(generate_plan(target, seed, 4), plan);
            }
        }
    }

    #[test]
    fn pipeline_vocabulary_never_corrupts_the_final_write_silently() {
        for (kind, _, max_nth) in vocabulary(Target::Pipeline) {
            if kind == "corrupt" || kind == "truncate" {
                assert!(
                    max_nth <= 3,
                    "{kind} may land on the final checkpoint write"
                );
            }
        }
        // The vocabulary is discovered, not hardcoded: the two kinds
        // added alongside this crate are present on their targets.
        assert!(vocabulary(Target::Pipeline)
            .iter()
            .any(|(kind, _, _)| kind == "torn_write"));
        assert!(vocabulary(Target::Fleet)
            .iter()
            .any(|(kind, _, _)| kind == "probe_loss"));
        assert!(vocabulary(Target::Coord)
            .iter()
            .any(|(kind, site, _)| kind == "worker_lost" && site == "worker"));
    }

    #[test]
    fn shrinking_finds_the_locally_minimal_failing_subset() {
        let plan = FaultPlan::parse(
            "io_error:checkpoint:1,kill_after:prune_unit:1,corrupt:checkpoint:2,worker_lost:worker:3",
        )
        .unwrap();
        // Failure requires the kill AND the corrupt entries together.
        let needed = |p: &FaultPlan| {
            p.faults.iter().any(|f| f.kind == "kill_after")
                && p.faults.iter().any(|f| f.kind == "corrupt")
        };
        let minimal = shrink_plan(&plan, needed);
        assert_eq!(
            minimal.to_string(),
            "kill_after:prune_unit:1,corrupt:checkpoint:2"
        );
        // Locally minimal: removing either remaining entry passes.
        for i in 0..minimal.faults.len() {
            let mut cand = minimal.clone();
            cand.faults.remove(i);
            assert!(!needed(&cand));
        }
        // A predicate that fails on anything non-empty shrinks to one.
        let minimal = shrink_plan(&plan, |p| !p.faults.is_empty());
        assert_eq!(minimal.faults.len(), 1);
    }

    #[test]
    fn eval_json_round_trips() {
        let eval = ScheduleEval {
            injected: vec![("probe_loss".to_string(), "replica1".to_string())],
            violations: vec![Violation {
                oracle: "liveness".to_string(),
                detail: "replica 1 never recovered".to_string(),
            }],
        };
        let back = eval_from_json(&eval_to_json(&eval).render()).unwrap();
        assert_eq!(back.injected, eval.injected);
        assert_eq!(back.violations, eval.violations);
        let empty = eval_from_json(&eval_to_json(&ScheduleEval::default()).render()).unwrap();
        assert!(empty.injected.is_empty() && empty.violations.is_empty());
    }

    #[test]
    fn campaign_reports_contain_no_paths_and_tally_by_kind() {
        let cfg = CampaignConfig {
            seed: 9,
            schedules: 2,
            targets: vec![Target::Fleet],
            intensity: 3,
            out_dir: PathBuf::from("/nonexistent-not-written"),
            subprocess: false,
            keep_dirs: false,
        };
        let records = vec![ScheduleRecord {
            target: Target::Fleet,
            index: 0,
            seed: schedule_seed(9, Target::Fleet, 0),
            plan: FaultPlan::parse("replica_crash:replica1:2,probe_loss:replica0:1").unwrap(),
            eval: ScheduleEval {
                injected: vec![
                    ("replica_crash".to_string(), "replica1".to_string()),
                    ("probe_loss".to_string(), "replica0".to_string()),
                ],
                violations: Vec::new(),
            },
            minimal: None,
        }];
        let text = campaign_report(&cfg, &records).render();
        assert!(
            !text.contains("nonexistent-not-written"),
            "paths leaked: {text}"
        );
        assert!(text.contains("\"replica_crash\":1"), "{text}");
        assert!(text.contains("\"probe_loss\":1"), "{text}");
        assert!(text.contains("\"result\":\"pass\""), "{text}");
    }
}
