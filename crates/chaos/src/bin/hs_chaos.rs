//! `hs_chaos` — seeded chaos campaigns over the HeadStart pipeline,
//! coordinator, and serving fleet.
//!
//! ```text
//! hs_chaos campaign --seed 7 --schedules 50          # sweep all targets
//! hs_chaos exec --target fleet --plan 'probe_loss:replica1:2' \
//!     --seed 123 --dir /tmp/repro                    # replay one schedule
//! hs_chaos shrink --target pipeline --plan '...' --oracle parity \
//!     --seed 123 --dir /tmp/shrink                   # minimize by hand
//! ```
//!
//! Exit codes: 0 clean, 1 invariant violations found, 2 usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hs_chaos::{
    eval_to_json, exec_schedule, generate_plan, reference_final, run_campaign, shrink_plan,
    CampaignConfig, Target, ORACLES,
};
use hs_telemetry::faults::FaultPlan;

const USAGE: &str = "usage: hs_chaos <command> [args]

commands:
  campaign --seed N --schedules N   run N seeded fault schedules per target,
           [--targets a,b,c]        check every invariant oracle, shrink any
           [--intensity K]          failure to a minimal HS_FAULT repro;
           [--out DIR]              writes <out>/campaign.json (byte-identical
           [--subprocess]           across runs of the same seed) and a
           [--keep-dirs]            repro-*.json per violation
  exec --target T --plan SPEC       replay one schedule under a fault plan
       --dir DIR [--seed N]         and report oracle violations (this is the
       [--reference HSCK]           one-command repro a campaign emits; with
       [--result FILE]              no --reference, a fault-free reference run
                                    is made first for the parity oracle)
  shrink --target T --plan SPEC     delta-debug a failing plan down to a
         --oracle NAME --dir DIR    locally-minimal HS_FAULT spec that still
         [--seed N]                 violates the named oracle

targets: pipeline (journaled hs_run), coord (sharded evaluation workers),
         fleet (replicated serving on the virtual clock)
oracles: completion, parity, integrity, liveness, deadline, conservation,
         telemetry";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("hs_chaos: {message}");
    ExitCode::from(2)
}

/// Pulls the value after `flag` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

/// Parses a count flag with `hs_run --workers` parity: non-integers name
/// the flag and the value, zero is rejected rather than clamped.
fn parse_count(value: &str, flag: &str) -> Result<u64, String> {
    let n = value
        .parse::<u64>()
        .map_err(|_| format!("{flag}: expected integer, got `{value}`"))?;
    if n == 0 {
        return Err(format!("{flag}: must be at least 1"));
    }
    Ok(n)
}

fn parse_target(value: &str) -> Result<Target, String> {
    Target::parse(value)
        .ok_or_else(|| format!("unknown target `{value}` (valid targets: pipeline, coord, fleet)"))
}

fn parse_plan(spec: &str) -> Result<FaultPlan, String> {
    FaultPlan::parse(spec).map_err(|e| e.to_string())
}

fn reject_extras(args: &[String]) -> Result<(), String> {
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    Ok(())
}

/// Resolves the parity reference for a pipeline-family exec/shrink: the
/// `--reference` file when given, a fresh fault-free run otherwise.
fn resolve_reference(
    target: Target,
    reference: Option<&String>,
    dir: &Path,
) -> Result<Vec<u8>, String> {
    if target == Target::Fleet {
        return Ok(Vec::new());
    }
    match reference {
        Some(path) => std::fs::read(path).map_err(|e| format!("--reference {path}: {e}")),
        None => reference_final(&dir.join("reference-run")),
    }
}

fn cmd_campaign(mut args: Vec<String>) -> Result<ExitCode, String> {
    let seed = take_flag(&mut args, "--seed")?.ok_or("campaign needs --seed N")?;
    let seed = parse_count(&seed, "--seed")?;
    let schedules = take_flag(&mut args, "--schedules")?.ok_or("campaign needs --schedules N")?;
    let schedules = parse_count(&schedules, "--schedules")?;
    let targets = match take_flag(&mut args, "--targets")? {
        Some(csv) => csv
            .split(',')
            .map(parse_target)
            .collect::<Result<Vec<_>, _>>()?,
        None => Target::ALL.to_vec(),
    };
    let intensity = match take_flag(&mut args, "--intensity")? {
        Some(value) => parse_count(&value, "--intensity")? as usize,
        None => 3,
    };
    let out_dir =
        take_flag(&mut args, "--out")?.map_or_else(|| PathBuf::from("chaos-out"), PathBuf::from);
    let subprocess = take_switch(&mut args, "--subprocess");
    let keep_dirs = take_switch(&mut args, "--keep-dirs");
    reject_extras(&args)?;

    let cfg = CampaignConfig {
        seed,
        schedules,
        targets,
        intensity,
        out_dir,
        subprocess,
        keep_dirs,
    };
    let outcome = run_campaign(&cfg)?;
    for record in &outcome.records {
        for v in &record.eval.violations {
            println!(
                "VIOLATION {}/s{:04} [{}] plan={} minimal={} — {}",
                record.target.as_str(),
                record.index,
                v.oracle,
                record.plan,
                record.minimal.as_ref().unwrap_or(&record.plan),
                v.detail
            );
        }
    }
    let injected: usize = outcome.records.iter().map(|r| r.eval.injected.len()).sum();
    println!(
        "campaign seed {} — {} schedules across {} target(s), {} faults injected, {} violation(s)",
        cfg.seed,
        outcome.records.len(),
        cfg.targets.len(),
        injected,
        outcome.violations()
    );
    println!("report: {}", cfg.out_dir.join("campaign.json").display());
    Ok(if outcome.violations() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_exec(mut args: Vec<String>) -> Result<ExitCode, String> {
    let target = take_flag(&mut args, "--target")?.ok_or("exec needs --target T")?;
    let target = parse_target(&target)?;
    let dir = take_flag(&mut args, "--dir")?.ok_or("exec needs --dir DIR")?;
    let dir = PathBuf::from(dir);
    let seed = match take_flag(&mut args, "--seed")? {
        Some(value) => parse_count(&value, "--seed")?,
        None => 1,
    };
    let plan = match take_flag(&mut args, "--plan")? {
        Some(spec) => parse_plan(&spec)?,
        // With no explicit plan, derive the schedule exactly as a
        // campaign with this seed/index would.
        None => generate_plan(target, seed, 3),
    };
    let reference = take_flag(&mut args, "--reference")?;
    let result_path = take_flag(&mut args, "--result")?;
    reject_extras(&args)?;

    let reference = resolve_reference(target, reference.as_ref(), &dir)?;
    let eval = exec_schedule(target, &plan, seed, &dir, &reference);
    if let Some(path) = result_path {
        std::fs::write(&path, eval_to_json(&eval).render())
            .map_err(|e| format!("--result {path}: {e}"))?;
    }
    for (kind, site) in &eval.injected {
        println!("injected {kind} at {site}");
    }
    for v in &eval.violations {
        println!("VIOLATION [{}] {}", v.oracle, v.detail);
    }
    if eval.violations.is_empty() {
        println!("clean: plan {plan} held every oracle");
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_shrink(mut args: Vec<String>) -> Result<ExitCode, String> {
    let target = take_flag(&mut args, "--target")?.ok_or("shrink needs --target T")?;
    let target = parse_target(&target)?;
    let plan = take_flag(&mut args, "--plan")?.ok_or("shrink needs --plan SPEC")?;
    let plan = parse_plan(&plan)?;
    let oracle = take_flag(&mut args, "--oracle")?.ok_or("shrink needs --oracle NAME")?;
    if !ORACLES.contains(&oracle.as_str()) {
        return Err(format!(
            "unknown oracle `{oracle}` (valid oracles: {})",
            ORACLES.join(", ")
        ));
    }
    let dir = take_flag(&mut args, "--dir")?.ok_or("shrink needs --dir DIR")?;
    let dir = PathBuf::from(dir);
    let seed = match take_flag(&mut args, "--seed")? {
        Some(value) => parse_count(&value, "--seed")?,
        None => 1,
    };
    let reference = take_flag(&mut args, "--reference")?;
    reject_extras(&args)?;

    let reference = resolve_reference(target, reference.as_ref(), &dir)?;
    let work = dir.join("shrink-work");
    let minimal = shrink_plan(&plan, |candidate| {
        let _ = std::fs::remove_dir_all(&work);
        let eval = exec_schedule(target, candidate, seed, &work, &reference);
        eval.violations.iter().any(|v| v.oracle == oracle)
    });
    let _ = std::fs::remove_dir_all(&work);
    println!("minimal plan: {minimal}");
    println!("HS_FAULT={minimal}");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "campaign" => cmd_campaign(args),
        "exec" => cmd_exec(args),
        "shrink" => cmd_shrink(args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => fail(message),
    }
}
