//! Minimal, dependency-free stand-in for the `criterion` benchmarking
//! crate, covering exactly the API subset the workspace's benches use.
//!
//! The build environment is fully offline (no crates.io registry), so the
//! real criterion cannot be fetched. This crate keeps every `[[bench]]`
//! target compiling and runnable:
//!
//! - under `cargo bench` (cargo passes `--bench`) each benchmark is warmed
//!   up and sampled, and mean/min wall-clock times are printed;
//! - under `cargo test` (no `--bench` flag) each benchmark body runs once
//!   as a smoke test, so the tier-1 gate stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    full: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes bench executables with `--bench`; anything
        // else (notably `cargo test`) gets a single smoke iteration.
        let full = std::env::args().any(|a| a == "--bench");
        Criterion { full }
    }
}

impl Criterion {
    /// Configures nothing; kept for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.full, name, 10, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a function under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(self.criterion.full, &label, self.sample_size, f);
        self
    }

    /// Benchmarks a function parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion.full, &label, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) runs the body.
#[derive(Debug)]
pub struct Bencher {
    full: bool,
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once in smoke mode or `samples` times when run via
    /// `cargo bench`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if !self.full {
            black_box(routine());
            return;
        }
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn run_one<F>(full: bool, label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        full,
        samples,
        results: Vec::new(),
    };
    f(&mut bencher);
    if !full {
        return;
    }
    if bencher.results.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.results.iter().sum();
    let mean = total / bencher.results.len() as u32;
    let min = bencher.results.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<40} mean {mean:>12.3?}   min {min:>12.3?}   samples {}",
        bencher.results.len()
    );
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Builds a benchmark-suite function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given benchmark suites.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { full: false };
        let mut count = 0;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn full_mode_collects_samples() {
        let mut c = Criterion { full: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0usize;
        group.bench_function("inc", |b| b.iter(|| count += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(count, 4);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
