//! The runner's error type: a thin union over every layer it drives.

use std::fmt;
use std::io;

use hs_core::HeadStartError;
use hs_data::DataError;
use hs_nn::{CompactError, NnError};
use hs_pruning::PruneError;
use hs_tensor::TensorError;

/// Anything that can go wrong while running a pipeline.
#[derive(Debug)]
pub enum RunnerError {
    /// Dataset generation or caching failed.
    Data(DataError),
    /// A network operation failed.
    Nn(NnError),
    /// A baseline criterion or the prune driver failed.
    Prune(PruneError),
    /// The HeadStart engine failed.
    HeadStart(HeadStartError),
    /// Structural compaction of the pruned model failed.
    Compact(CompactError),
    /// Checkpoint or artifact I/O failed.
    Io(io::Error),
    /// The run configuration is invalid (bad flag, unknown name, …).
    BadConfig(String),
    /// The run journal is missing, malformed, or inconsistent with the
    /// run directory it describes.
    Journal(String),
    /// A `kill_after` fault fired: the pipeline aborted at a stage
    /// boundary as if the process had been killed there. Only produced
    /// under fault injection (`HS_FAULT`), never in production runs.
    InjectedCrash {
        /// The stage boundary the simulated crash hit.
        site: String,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Data(e) => write!(f, "dataset: {e}"),
            RunnerError::Nn(e) => write!(f, "network: {e}"),
            RunnerError::Prune(e) => write!(f, "pruning: {e}"),
            RunnerError::HeadStart(e) => write!(f, "headstart: {e}"),
            RunnerError::Compact(e) => write!(f, "compaction: {e}"),
            RunnerError::Io(e) => write!(f, "io: {e}"),
            RunnerError::BadConfig(detail) => write!(f, "bad run config: {detail}"),
            RunnerError::Journal(detail) => write!(f, "run journal: {detail}"),
            RunnerError::InjectedCrash { site } => {
                write!(f, "injected crash at stage boundary `{site}`")
            }
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<DataError> for RunnerError {
    fn from(e: DataError) -> Self {
        RunnerError::Data(e)
    }
}

impl From<NnError> for RunnerError {
    fn from(e: NnError) -> Self {
        RunnerError::Nn(e)
    }
}

impl From<PruneError> for RunnerError {
    fn from(e: PruneError) -> Self {
        RunnerError::Prune(e)
    }
}

impl From<HeadStartError> for RunnerError {
    fn from(e: HeadStartError) -> Self {
        RunnerError::HeadStart(e)
    }
}

impl From<CompactError> for RunnerError {
    fn from(e: CompactError) -> Self {
        RunnerError::Compact(e)
    }
}

impl From<io::Error> for RunnerError {
    fn from(e: io::Error) -> Self {
        RunnerError::Io(e)
    }
}

impl From<TensorError> for RunnerError {
    fn from(e: TensorError) -> Self {
        RunnerError::Nn(NnError::from(e))
    }
}
