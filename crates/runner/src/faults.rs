//! Runner-side fault injection: parsing the `HS_FAULT` environment
//! variable into the process-global fault registry
//! ([`hs_telemetry::faults`]) and turning `kill_after` faults into
//! simulated crashes at pipeline stage boundaries.
//!
//! ```text
//! HS_FAULT=io_error:checkpoint:2,kill_after:prune_unit:1 hs_run …
//! ```
//!
//! A `kill_after:<site>` fault makes [`crash_point`] return
//! [`RunnerError::InjectedCrash`] the n-th time the pipeline crosses
//! that boundary — after the journal for the completed work has been
//! written, exactly where a real `kill -9` would leave the run. The
//! crash sites are `pretrain` (after the pre-trained checkpoint is on
//! disk), `prune_unit` (after each journaled pruned unit) and
//! `finalize` (after the finalized journal, before the artifact).
//!
//! Everything here is deterministic: the same plan against the same
//! seeded run always fires at the same operation, which is what lets
//! the crash/resume parity tests compare bit-for-bit.

use hs_telemetry::faults::{self, FaultPlan};

use crate::error::RunnerError;

/// Environment variable holding the fault plan (`kind:site[:n]`,
/// comma-separated).
pub const FAULT_ENV: &str = "HS_FAULT";

/// Arms the fault plan from the `HS_FAULT` environment variable, if
/// set. With the variable unset or empty this is a no-op (and disarms
/// nothing already armed programmatically).
///
/// # Errors
///
/// Returns [`RunnerError::BadConfig`] when the variable is set but
/// malformed — a typo in a fault plan should fail loudly, not silently
/// run without faults.
pub fn arm_from_env() -> Result<(), RunnerError> {
    let Ok(spec) = std::env::var(FAULT_ENV) else {
        return Ok(());
    };
    if spec.trim().is_empty() {
        return Ok(());
    }
    let plan =
        FaultPlan::parse(&spec).map_err(|e| RunnerError::BadConfig(format!("{FAULT_ENV}: {e}")))?;
    faults::arm(plan);
    Ok(())
}

/// A pipeline stage boundary: reports an [`RunnerError::InjectedCrash`]
/// when an armed `kill_after:<site>` fault fires here, after flushing
/// telemetry (a real crash would at least leave the already-written
/// stream behind).
///
/// With no faults armed this costs one relaxed atomic load.
///
/// # Errors
///
/// Returns [`RunnerError::InjectedCrash`] when the fault fires.
pub fn crash_point(site: &str) -> Result<(), RunnerError> {
    if faults::armed() && faults::trip("kill_after", site) {
        hs_telemetry::flush();
        return Err(RunnerError::InjectedCrash {
            site: site.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_points_fire_only_for_armed_kill_after_faults() {
        // Serializes against any other test in this binary arming the
        // process-global registry.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        faults::disarm();
        assert!(crash_point("prune_unit").is_ok());

        faults::arm(FaultPlan::parse("kill_after:prune_unit:2").unwrap());
        assert!(crash_point("prune_unit").is_ok()); // hit 1
        match crash_point("prune_unit") {
            Err(RunnerError::InjectedCrash { site }) => assert_eq!(site, "prune_unit"),
            other => panic!("expected injected crash, got {other:?}"),
        }
        assert!(crash_point("prune_unit").is_ok()); // fires exactly once
        faults::disarm();
    }
}
