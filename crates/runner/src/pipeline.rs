//! The end-to-end pipeline: dataset → pre-train (or checkpoint load) →
//! prune schedule → fine-tune → eval → JSON artifact, with per-stage
//! wall-clock timings. Every experiment binary is a thin arrangement of
//! these stages; [`run`] is the whole thing behind one [`RunnerConfig`].

use std::sync::Arc;
use std::time::Instant;

use hs_core::{
    prune_all_block_inners_executed, BlockDecision, BlockPruner, EvalExecutor, HeadStartConfig,
    HeadStartPruner, LayerPruner, SerialExecutor, TelemetryObserver,
};
use hs_data::{cached, Dataset};
use hs_nn::accounting::{analyze, NetworkCost};
use hs_nn::optim::Sgd;
use hs_nn::surgery::{conv_sites, prune_feature_maps};
use hs_nn::{checkpoint, train, Network, NnError};
use hs_pruning::driver::{
    prune_whole_model, train_from_scratch, FineTune, LayerTrace, PruneOutcome,
};
use hs_pruning::ScoreContext;
use hs_telemetry::{Event, EventKind, Level, TelemetryConfig};
use hs_tensor::Rng;

use crate::budget::Budget;
use crate::config::{BaselineKind, Method, RunnerConfig};
use crate::error::RunnerError;
use crate::report::{write_json, Json, Phase, StageTiming};

/// How many scoring images baseline criteria see in single-layer runs —
/// the same class-balanced subset size the whole-model driver uses.
const SCORING_IMAGES: usize = 64;

/// Trains a fresh SGD schedule on `net` (momentum 0.9, weight decay
/// 5e-4, the paper's settings) and reports progress.
///
/// # Errors
///
/// Propagates training errors.
pub fn pretrain(
    net: &mut Network,
    ds: &Dataset,
    epochs: usize,
    rng: &mut Rng,
) -> Result<f32, NnError> {
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    let start = Instant::now();
    for epoch in 0..epochs {
        let stats = train::train_epoch(net, &mut opt, &ds.train_images, &ds.train_labels, 32, rng)?;
        if (epoch % 4 == 0 || epoch + 1 == epochs) && hs_telemetry::enabled(Level::Info) {
            // Elapsed time rides in `secs` (stripped by determinism
            // tests), never in the message or fields.
            let mut progress = Event::new(EventKind::Log, Level::Info, "pretrain")
                .message(format!(
                    "epoch {epoch:3}: loss {:.3} train-acc {:.3}",
                    stats.loss, stats.accuracy
                ))
                .field("epoch", epoch)
                .field("loss", stats.loss)
                .field("train_accuracy", stats.accuracy);
            progress.secs = Some(start.elapsed().as_secs_f64());
            hs_telemetry::emit(progress);
        }
    }
    train::evaluate(net, &ds.test_images, &ds.test_labels, 64)
}

/// A pre-trained model plus everything needed to prune it: the shared
/// starting point of every experiment. Produced by [`prepare`].
#[derive(Debug)]
pub struct Prepared {
    /// The dataset (shared through the process-wide cache).
    pub ds: Arc<Dataset>,
    /// The pre-trained (or checkpoint-restored) model.
    pub net: Network,
    /// Test accuracy of the original model.
    pub original_accuracy: f32,
    /// Cost breakdown of the original model.
    pub original_cost: NetworkCost,
    /// The budget the run was prepared under.
    pub budget: Budget,
    /// Stage timings accumulated so far (dataset, pretrain/checkpoint).
    pub stages: Vec<StageTiming>,
}

/// Builds the dataset and pre-trained model for a config. If
/// `cfg.checkpoint` points at an existing file it is loaded instead of
/// pre-training; otherwise the model is pre-trained and, when a
/// checkpoint path is configured, saved there for later resume.
///
/// # Errors
///
/// Propagates dataset, training and I/O errors.
pub fn prepare(cfg: &RunnerConfig) -> Result<Prepared, RunnerError> {
    let mut stages = Vec::new();
    let phase = Phase::start(&format!("[{}] dataset {}", cfg.label, cfg.data.name()));
    let ds = cached(&cfg.data.spec())?;
    phase.record(&mut stages);

    let mut rng = Rng::seed_from(cfg.seed);
    let mut net = cfg.model.build(&ds, &mut rng)?;
    let restored = match &cfg.checkpoint {
        Some(path) if path.exists() => {
            let phase = Phase::start(&format!(
                "[{}] checkpoint load {}",
                cfg.label,
                path.display()
            ));
            match checkpoint::load(path) {
                Ok(loaded) => {
                    net = loaded;
                    phase.record(&mut stages);
                    true
                }
                // A checkpoint that fails its checksums is a stale
                // cache, not a fatal condition: note it and re-pretrain
                // (same seed → bit-identical model).
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    phase.end();
                    hs_telemetry::emit(
                        Event::new(EventKind::Recovery, Level::Warn, "runner")
                            .message(format!(
                                "checkpoint {} failed verification ({e}); re-pretraining",
                                path.display()
                            ))
                            .field("reason", "corrupt_checkpoint")
                            .field("action", "re_pretrain"),
                    );
                    false
                }
                Err(e) => {
                    phase.end();
                    return Err(RunnerError::Io(e));
                }
            }
        }
        _ => false,
    };
    if !restored {
        let phase = Phase::start(&format!(
            "[{}] pretrain {} ({} epochs)",
            cfg.label,
            cfg.model.name(),
            cfg.budget.pretrain_epochs
        ));
        pretrain(&mut net, &ds, cfg.budget.pretrain_epochs, &mut rng)?;
        phase.record(&mut stages);
        if let Some(path) = &cfg.checkpoint {
            checkpoint::save(&net, path)?;
            hs_telemetry::artifact(&cfg.label, path);
        }
    }
    let original_accuracy = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
    let original_cost = analyze(&net, ds.channels(), ds.image_size())?;
    Ok(Prepared {
        ds,
        net,
        original_accuracy,
        original_cost,
        budget: cfg.budget,
        stages,
    })
}

/// Outcome of running one pruning method on a [`Prepared`] model.
#[derive(Debug)]
pub struct MethodRun {
    /// Method label.
    pub label: String,
    /// The pruned (and fine-tuned) model.
    pub net: Network,
    /// Final test accuracy.
    pub final_accuracy: f32,
    /// Final cost breakdown.
    pub cost: NetworkCost,
    /// Per-layer trace (empty for block/inner/scratch methods).
    pub traces: Vec<LayerTrace>,
    /// Block decision, for [`Method::HeadStartBlocks`] runs.
    pub block_decision: Option<BlockDecision>,
    /// Wall-clock seconds the method took.
    pub seconds: f64,
}

/// Outcome of a single-layer prune (the Figure 3 / ablation
/// measurement): no fine-tuning, inception accuracy only.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleLayerRun {
    /// Feature maps kept.
    pub kept: usize,
    /// RL episodes trained (0 for baselines).
    pub episodes: usize,
    /// Test accuracy after surgery, before any fine-tuning.
    pub accuracy: f32,
}

impl Prepared {
    /// The fine-tuning schedule the budget prescribes.
    pub fn finetune(&self) -> FineTune {
        FineTune {
            epochs: self.budget.finetune_epochs,
            ..FineTune::default()
        }
    }

    /// Runs a whole-model pruning method on a clone of the prepared
    /// model. `seed` drives the method's own RNG stream, independent of
    /// pre-training.
    ///
    /// # Errors
    ///
    /// Propagates pruning and training errors.
    pub fn run_method(&self, method: &Method, seed: u64) -> Result<MethodRun, RunnerError> {
        self.run_method_with(method, seed, &mut SerialExecutor)
    }

    /// As [`Prepared::run_method`], with an explicit candidate-batch
    /// evaluation executor for the RL methods (bit-identical output for
    /// every executor; only wall-clock differs). Baseline methods never
    /// touch the executor.
    ///
    /// # Errors
    ///
    /// Propagates pruning and training errors.
    pub fn run_method_with(
        &self,
        method: &Method,
        seed: u64,
        executor: &mut dyn EvalExecutor,
    ) -> Result<MethodRun, RunnerError> {
        let label = method.label();
        let phase = Phase::start(&format!("prune: {label}"));
        let start = Instant::now();
        let mut net = self.net.clone();
        let mut rng = Rng::seed_from(seed);
        let ft = self.finetune();
        let mut traces = Vec::new();
        let mut block_decision = None;
        let final_accuracy;
        match method {
            Method::HeadStartLayers { .. } => {
                let cfg = method.headstart_config(&self.budget).ok_or_else(|| {
                    RunnerError::BadConfig("HeadStart method without an RL config".to_string())
                })?;
                let mut observer = TelemetryObserver::from_config(&cfg).with_trace_seed(seed);
                let (outcome, _decisions) = HeadStartPruner::new(cfg, ft).prune_model_executed(
                    &mut net,
                    &self.ds,
                    &mut rng,
                    &mut observer,
                    executor,
                )?;
                let PruneOutcome {
                    traces: t,
                    final_accuracy: acc,
                    ..
                } = outcome;
                traces = t;
                final_accuracy = acc;
            }
            Method::HeadStartBlocks { .. } => {
                let cfg = method.headstart_config(&self.budget).ok_or_else(|| {
                    RunnerError::BadConfig("HeadStart method without an RL config".to_string())
                })?;
                // Block pruning fine-tunes once at the end; give it the
                // whole per-layer budget.
                let ft = FineTune {
                    epochs: (self.budget.finetune_epochs * 3).max(1),
                    ..FineTune::default()
                };
                let mut observer = TelemetryObserver::from_config(&cfg).with_trace_seed(seed);
                let (decision, acc) = BlockPruner::new(cfg).prune_and_finetune_executed(
                    &mut net,
                    &self.ds,
                    &ft,
                    &mut rng,
                    &mut observer,
                    executor,
                )?;
                block_decision = Some(decision);
                final_accuracy = acc;
            }
            Method::HeadStartInner { .. } => {
                let cfg = method.headstart_config(&self.budget).ok_or_else(|| {
                    RunnerError::BadConfig("HeadStart method without an RL config".to_string())
                })?;
                let mut observer = TelemetryObserver::from_config(&cfg).with_trace_seed(seed);
                let (_decisions, acc) = prune_all_block_inners_executed(
                    &cfg,
                    &ft,
                    &mut net,
                    &self.ds,
                    &mut rng,
                    &mut observer,
                    executor,
                )?;
                final_accuracy = acc;
            }
            Method::Baseline { kind, keep_ratio } => {
                let mut criterion = kind.build();
                let outcome = prune_whole_model(
                    &mut net,
                    criterion.as_mut(),
                    *keep_ratio,
                    &self.ds,
                    &ft,
                    &mut rng,
                )?;
                traces = outcome.traces;
                final_accuracy = outcome.final_accuracy;
            }
        }
        let cost = analyze(&net, self.ds.channels(), self.ds.image_size())?;
        phase.end();
        Ok(MethodRun {
            label,
            net,
            final_accuracy,
            cost,
            traces,
            block_decision,
            seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// The "from scratch" control: re-initializes `arch` (a pruned
    /// architecture) and trains it for `epochs` with the default
    /// fine-tuning schedule.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn run_scratch(
        &self,
        arch: &Network,
        epochs: usize,
        seed: u64,
    ) -> Result<MethodRun, RunnerError> {
        let phase = Phase::start("from scratch");
        let start = Instant::now();
        let mut rng = Rng::seed_from(seed);
        let final_accuracy =
            train_from_scratch(arch, &self.ds, epochs, &FineTune::default(), &mut rng)?;
        let cost = analyze(arch, self.ds.channels(), self.ds.image_size())?;
        phase.end();
        Ok(MethodRun {
            label: "from scratch".to_string(),
            net: arch.clone(),
            final_accuracy,
            cost,
            traces: Vec::new(),
            block_decision: None,
            seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// The HeadStart config for a single-layer run at `sp`, under this
    /// run's budget.
    pub fn headstart_layer_cfg(&self, sp: f32) -> HeadStartConfig {
        HeadStartConfig::new(sp)
            .max_episodes(self.budget.rl_episodes)
            .eval_images(self.budget.rl_eval_images)
    }

    /// Single-layer HeadStart prune on a clone (no fine-tuning): learns
    /// the inception of conv `ordinal`, applies the surgery, optionally
    /// recalibrates batch-norm statistics, and reports test accuracy.
    ///
    /// # Errors
    ///
    /// Propagates pruning, surgery and evaluation errors.
    pub fn single_layer_headstart(
        &self,
        cfg: &HeadStartConfig,
        ordinal: usize,
        recalibrate: bool,
        seed: u64,
    ) -> Result<SingleLayerRun, RunnerError> {
        let mut net = self.net.clone();
        let mut rng = Rng::seed_from(seed);
        let d = LayerPruner::new(cfg.clone()).prune(&mut net, ordinal, &self.ds, &mut rng)?;
        let conv = net.conv_indices()[ordinal];
        prune_feature_maps(&mut net, conv, &d.keep)?;
        let accuracy = self.post_surgery_accuracy(&mut net, recalibrate)?;
        Ok(SingleLayerRun {
            kept: d.keep.len(),
            episodes: d.episodes(),
            accuracy,
        })
    }

    /// Single-layer baseline prune on a clone (no fine-tuning), keeping
    /// `1/sp` of the layer's maps. The criterion scores the same
    /// class-balanced training subset the whole-model driver uses.
    ///
    /// # Errors
    ///
    /// Propagates criterion, surgery and evaluation errors.
    pub fn single_layer_baseline(
        &self,
        kind: BaselineKind,
        ordinal: usize,
        sp: f32,
        recalibrate: bool,
        seed: u64,
    ) -> Result<SingleLayerRun, RunnerError> {
        let mut net = self.net.clone();
        let mut rng = Rng::seed_from(seed);
        let sites = conv_sites(&net);
        let site = *sites.get(ordinal).ok_or_else(|| {
            RunnerError::BadConfig(format!("conv ordinal {ordinal} out of range"))
        })?;
        let maps = net.conv(site.conv)?.out_channels();
        let keep_count = ((maps as f32 / sp).round() as usize).clamp(1, maps);
        let scoring_n = SCORING_IMAGES.min(self.ds.train_labels.len());
        let idx: Vec<usize> = (0..scoring_n).collect();
        let scoring_images = self.ds.train_images.index_select(0, &idx)?;
        let scoring_labels: Vec<usize> = self.ds.train_labels[..scoring_n].to_vec();
        let mut criterion = kind.build();
        let keep = {
            let mut ctx =
                ScoreContext::new(&mut net, site, &scoring_images, &scoring_labels, &mut rng);
            criterion.keep_set(&mut ctx, keep_count)?
        };
        prune_feature_maps(&mut net, site.conv, &keep)?;
        criterion.post_surgery(&mut net, site, &keep)?;
        let accuracy = self.post_surgery_accuracy(&mut net, recalibrate)?;
        Ok(SingleLayerRun {
            kept: keep.len(),
            episodes: 0,
            accuracy,
        })
    }

    fn post_surgery_accuracy(
        &self,
        net: &mut Network,
        recalibrate: bool,
    ) -> Result<f32, RunnerError> {
        if recalibrate {
            train::recalibrate_bn(net, &self.ds.train_images, 32, 2)?;
        }
        Ok(train::evaluate(
            net,
            &self.ds.test_images,
            &self.ds.test_labels,
            64,
        )?)
    }
}

/// Artifact record of the post-prune compaction stage (`--compact`):
/// the physically shrunk checkpoint plus achieved-vs-target speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactSummary {
    /// Checkpoint file name relative to the run directory.
    pub checkpoint: String,
    /// Parameters of the compacted model.
    pub params: u64,
    /// MACs per sample of the compacted model.
    pub flops: u64,
    /// The method's target speedup (`sp`).
    pub target_speedup: f64,
    /// FLOP speedup actually realized: original MACs / compacted MACs.
    pub achieved_speedup: f64,
    /// Units physically rewritten (conv surgeries, removed blocks,
    /// shrunk block interiors).
    pub units: usize,
}

impl CompactSummary {
    /// Renders the summary as a JSON artifact fragment.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("checkpoint".into(), Json::str(self.checkpoint.clone())),
            ("params".into(), Json::num(self.params as f64)),
            ("flops".into(), Json::num(self.flops as f64)),
            ("target_speedup".into(), Json::num(self.target_speedup)),
            ("achieved_speedup".into(), Json::num(self.achieved_speedup)),
            ("units".into(), Json::num(self.units as f64)),
        ])
    }
}

/// The complete record of one pipeline run.
#[derive(Debug)]
pub struct PipelineReport {
    /// Run label.
    pub label: String,
    /// Test accuracy before pruning.
    pub original_accuracy: f32,
    /// Test accuracy after the method (and its fine-tuning).
    pub final_accuracy: f32,
    /// Cost before pruning.
    pub original_cost: NetworkCost,
    /// Cost after pruning.
    pub final_cost: NetworkCost,
    /// Per-layer trace, when the method produces one.
    pub traces: Vec<LayerTrace>,
    /// All stage timings (dataset, pretrain/checkpoint, prune, eval).
    pub stages: Vec<StageTiming>,
    /// The compaction stage's record, when `--compact` ran.
    pub compact: Option<CompactSummary>,
    /// Evaluation workers the run was configured with (`--workers`).
    /// Echoed, together with the effective tensor-pool width, under the
    /// artifact's `execution` key so a stored artifact records the
    /// parallelism it ran under.
    pub workers: usize,
}

impl PipelineReport {
    /// Parameter compression ratio `W'/W` in percent.
    pub fn compression_pct(&self) -> f64 {
        100.0 * self.final_cost.total_params as f64 / self.original_cost.total_params.max(1) as f64
    }

    /// Renders the report as a JSON artifact.
    pub fn to_json(&self) -> Json {
        let traces = self
            .traces
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("conv_ordinal".into(), Json::num(t.conv_ordinal as f64)),
                    ("maps_before".into(), Json::num(t.maps_before as f64)),
                    ("maps_after".into(), Json::num(t.maps_after as f64)),
                    ("params_after".into(), Json::num(t.params_after as f64)),
                    ("flops_after".into(), Json::num(t.flops_after as f64)),
                    (
                        "inception_accuracy".into(),
                        Json::num(f64::from(t.inception_accuracy)),
                    ),
                    (
                        "finetuned_accuracy".into(),
                        Json::num(f64::from(t.finetuned_accuracy)),
                    ),
                ])
            })
            .collect();
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::str(s.name.clone())),
                    ("seconds".into(), Json::num(s.seconds)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("label".into(), Json::str(self.label.clone())),
            (
                "original_accuracy".into(),
                Json::num(f64::from(self.original_accuracy)),
            ),
            (
                "final_accuracy".into(),
                Json::num(f64::from(self.final_accuracy)),
            ),
            (
                "original_params".into(),
                Json::num(self.original_cost.total_params as f64),
            ),
            (
                "final_params".into(),
                Json::num(self.final_cost.total_params as f64),
            ),
            (
                "original_flops".into(),
                Json::num(self.original_cost.total_flops as f64),
            ),
            (
                "final_flops".into(),
                Json::num(self.final_cost.total_flops as f64),
            ),
            ("compression_pct".into(), Json::num(self.compression_pct())),
            ("layers".into(), Json::Arr(traces)),
            ("stages".into(), Json::Arr(stages)),
            (
                // Effective parallelism echo (like bench artifacts'
                // `pool_threads`): `workers` is the --workers request,
                // `pool_threads` the HS_NUM_THREADS-controlled tensor
                // pool width this process actually ran with.
                "execution".into(),
                Json::Obj(vec![
                    ("workers".into(), Json::num(self.workers as f64)),
                    (
                        "pool_threads".into(),
                        Json::num(hs_tensor::pool::effective_threads() as f64),
                    ),
                ]),
            ),
            (
                "compact".into(),
                match &self.compact {
                    Some(c) => c.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Runs one complete pipeline from a config: dataset → pre-train or
/// checkpoint-load → prune → fine-tune → eval, writing the JSON
/// artifact when `cfg.artifact` is set.
///
/// When `cfg.telemetry` or `cfg.log_level` is set the process-global
/// telemetry sinks are (re)configured first; every stage then runs
/// inside a root `pipeline` span, so stage spans in the JSONL stream
/// nest as `pipeline/…`. When `cfg.metrics` is set the metrics registry
/// is rendered to that path in Prometheus text format at the end.
///
/// # Errors
///
/// Propagates every stage's errors.
pub fn run(cfg: &RunnerConfig) -> Result<PipelineReport, RunnerError> {
    if cfg.telemetry.is_some() || cfg.log_level.is_some() {
        hs_telemetry::configure(&TelemetryConfig {
            stderr_level: cfg.log_level,
            jsonl: cfg.telemetry.clone(),
        })?;
    }
    if let Some(dir) = cfg.run_dir.clone() {
        return crate::resume::run_journaled(cfg, &dir, None);
    }
    if cfg.compact {
        // The compacted checkpoint lives next to the journal; without a
        // run directory there is nowhere durable to put it.
        return Err(RunnerError::BadConfig(
            "--compact requires --run-dir".to_string(),
        ));
    }
    let pipeline_span = hs_telemetry::span!(
        "pipeline",
        "label" => cfg.label.clone(),
        "method" => cfg.method.label(),
    );
    let prepared = prepare(cfg)?;
    let mut executor = hs_coord::executor_for(cfg.workers, cfg.prune_seed);
    let method_run = prepared.run_method_with(&cfg.method, cfg.prune_seed, executor.as_mut())?;
    // Shut the worker fleet down now so its lifecycle telemetry and the
    // utilization gauge land before the artifact/metrics flush below.
    drop(executor);
    let mut stages = prepared.stages.clone();
    stages.push(StageTiming {
        name: format!("prune:{}", method_run.label),
        seconds: method_run.seconds,
    });
    let report = PipelineReport {
        label: cfg.label.clone(),
        original_accuracy: prepared.original_accuracy,
        final_accuracy: method_run.final_accuracy,
        original_cost: prepared.original_cost,
        final_cost: method_run.cost,
        traces: method_run.traces,
        stages,
        compact: None,
        workers: cfg.workers,
    };
    if let Some(path) = &cfg.artifact {
        write_json(path, &report.to_json())?;
        hs_telemetry::artifact(&cfg.label, path);
    }
    pipeline_span.close();
    if let Some(path) = &cfg.metrics {
        hs_telemetry::io::atomic_write_as(
            path,
            "metrics",
            hs_telemetry::metrics::render_prometheus().as_bytes(),
        )?;
        hs_telemetry::artifact(&cfg.label, path);
    }
    hs_telemetry::flush_metrics();
    Ok(report)
}
