//! Run configuration: which dataset, model, method and budget a
//! pipeline executes. Every choice parses from CLI-style strings so the
//! `hs_run` binary and the experiment binaries share one vocabulary.

use std::path::PathBuf;

use hs_core::HeadStartConfig;
use hs_data::{Dataset, DatasetSpec};
use hs_nn::{models, Network, NnError};
use hs_pruning::{Apoz, AutoPruner, L1Norm, PruningCriterion, Random, ThiNet};
use hs_telemetry::Level;
use hs_tensor::Rng;

use crate::budget::Budget;
use crate::error::RunnerError;

/// Which synthetic dataset a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataChoice {
    /// CIFAR-100 substitute (small images, many classes).
    CifarLike,
    /// CUB-200 substitute (fine-grained, larger images).
    CubLike,
}

impl DataChoice {
    /// The dataset specification for this choice.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DataChoice::CifarLike => DatasetSpec::cifar_like(),
            DataChoice::CubLike => DatasetSpec::cub_like(),
        }
    }

    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            DataChoice::CifarLike => "cifar",
            DataChoice::CubLike => "cub",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::BadConfig`] for unknown names.
    pub fn parse(s: &str) -> Result<Self, RunnerError> {
        match s {
            "cifar" => Ok(DataChoice::CifarLike),
            "cub" => Ok(DataChoice::CubLike),
            other => Err(RunnerError::BadConfig(format!(
                "unknown dataset `{other}` (use cifar or cub)"
            ))),
        }
    }
}

/// Which architecture a run instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelKind {
    /// VGG-11 with batch norm.
    Vgg11,
    /// VGG-16 with batch norm.
    Vgg16,
    /// CIFAR-style ResNet with `n` blocks per group (depth `6n + 2`).
    ResNetCifar {
        /// Blocks per group.
        n: usize,
    },
    /// LeNet-style small conv net.
    LeNet,
    /// AlexNet-style conv net.
    AlexNet,
}

/// An architecture plus its width multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelChoice {
    /// Architecture family.
    pub kind: ModelKind,
    /// Width multiplier (fraction of the paper's channel counts).
    pub width: f32,
}

impl ModelChoice {
    /// Creates a model choice.
    pub fn new(kind: ModelKind, width: f32) -> Self {
        ModelChoice { kind, width }
    }

    /// CLI name of the architecture.
    pub fn name(&self) -> String {
        match self.kind {
            ModelKind::Vgg11 => "vgg11".to_string(),
            ModelKind::Vgg16 => "vgg16".to_string(),
            ModelKind::ResNetCifar { n } => format!("resnet{}", models::resnet_depth(n)),
            ModelKind::LeNet => "lenet".to_string(),
            ModelKind::AlexNet => "alexnet".to_string(),
        }
    }

    /// Parses a CLI name into a kind (width is a separate flag).
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::BadConfig`] for unknown names.
    pub fn parse(name: &str, width: f32) -> Result<Self, RunnerError> {
        let kind = match name {
            "vgg11" => ModelKind::Vgg11,
            "vgg16" => ModelKind::Vgg16,
            "resnet20" => ModelKind::ResNetCifar { n: 3 },
            "resnet38" => ModelKind::ResNetCifar { n: 6 },
            "lenet" => ModelKind::LeNet,
            "alexnet" => ModelKind::AlexNet,
            other => {
                return Err(RunnerError::BadConfig(format!(
                    "unknown model `{other}` (use vgg11|vgg16|resnet20|resnet38|lenet|alexnet)"
                )))
            }
        };
        Ok(ModelChoice { kind, width })
    }

    /// Instantiates the architecture for a dataset.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn build(&self, ds: &Dataset, rng: &mut Rng) -> Result<Network, NnError> {
        let (c, classes, size, w) = (ds.channels(), ds.num_classes(), ds.image_size(), self.width);
        match self.kind {
            ModelKind::Vgg11 => models::vgg11(c, classes, size, w, rng),
            ModelKind::Vgg16 => models::vgg16(c, classes, size, w, rng),
            ModelKind::ResNetCifar { n } => models::resnet_cifar(n, c, classes, w, rng),
            ModelKind::LeNet => models::lenet(c, classes, size, w, rng),
            ModelKind::AlexNet => models::alexnet(c, classes, size, w, rng),
        }
    }
}

/// A non-RL pruning criterion used as a comparison baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Uniform random keep set.
    Random,
    /// Li'17 L1-norm filter magnitude.
    L1,
    /// Average Percentage of Zeros.
    Apoz,
    /// ThiNet'17 greedy reconstruction.
    ThiNet,
    /// AutoPruner'18 with a given optimization budget.
    AutoPruner {
        /// Optimization iterations.
        iterations: usize,
    },
}

impl BaselineKind {
    /// Instantiates the criterion.
    pub fn build(&self) -> Box<dyn PruningCriterion> {
        match self {
            BaselineKind::Random => Box::new(Random::new()),
            BaselineKind::L1 => Box::new(L1Norm::new()),
            BaselineKind::Apoz => Box::new(Apoz::new()),
            BaselineKind::ThiNet => Box::new(ThiNet::new()),
            BaselineKind::AutoPruner { iterations } => {
                Box::new(AutoPruner::new().iterations(*iterations))
            }
        }
    }

    /// Display label, matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::Random => "Random",
            BaselineKind::L1 => "Li'17",
            BaselineKind::Apoz => "APoZ",
            BaselineKind::ThiNet => "ThiNet'17",
            BaselineKind::AutoPruner { .. } => "AutoPruner'18",
        }
    }

    /// CLI name, the inverse of [`BaselineKind::parse`].
    pub fn cli_name(&self) -> &'static str {
        match self {
            BaselineKind::Random => "random",
            BaselineKind::L1 => "l1",
            BaselineKind::Apoz => "apoz",
            BaselineKind::ThiNet => "thinet",
            BaselineKind::AutoPruner { .. } => "autopruner",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::BadConfig`] for unknown names.
    pub fn parse(s: &str) -> Result<Self, RunnerError> {
        match s {
            "random" => Ok(BaselineKind::Random),
            "l1" => Ok(BaselineKind::L1),
            "apoz" => Ok(BaselineKind::Apoz),
            "thinet" => Ok(BaselineKind::ThiNet),
            "autopruner" => Ok(BaselineKind::AutoPruner { iterations: 20 }),
            other => Err(RunnerError::BadConfig(format!(
                "unknown baseline `{other}` (use random|l1|apoz|thinet|autopruner)"
            ))),
        }
    }
}

/// What a pipeline run does to the pre-trained model.
#[derive(Debug, Clone, PartialEq)]
pub enum Method {
    /// HeadStart per-layer feature-map pruning, front to back with
    /// fine-tuning (Tables 1–3).
    HeadStartLayers {
        /// Target speedup per layer.
        sp: f32,
    },
    /// HeadStart whole-block pruning for ResNets (Table 4).
    HeadStartBlocks {
        /// Target parameter speedup.
        sp: f32,
    },
    /// HeadStart intra-block filter pruning for ResNets.
    HeadStartInner {
        /// Target speedup per block interior.
        sp: f32,
    },
    /// A baseline criterion at a fixed per-layer keep ratio.
    Baseline {
        /// The criterion.
        kind: BaselineKind,
        /// Fraction of maps each layer keeps.
        keep_ratio: f32,
    },
}

impl Method {
    /// Display label for tables and artifacts.
    pub fn label(&self) -> String {
        match self {
            Method::HeadStartLayers { .. } => "HeadStart".to_string(),
            Method::HeadStartBlocks { .. } => "HeadStart-blocks".to_string(),
            Method::HeadStartInner { .. } => "HeadStart-inner".to_string(),
            Method::Baseline { kind, .. } => kind.label().to_string(),
        }
    }

    /// CLI name, the inverse of [`Method::parse`]. Together with
    /// [`Method::sp`] and [`Method::keep_ratio`] this round-trips a
    /// method through the run journal's config echo.
    pub fn cli_name(&self) -> &'static str {
        match self {
            Method::HeadStartLayers { .. } => "headstart",
            Method::HeadStartBlocks { .. } => "headstart-blocks",
            Method::HeadStartInner { .. } => "headstart-inner",
            Method::Baseline { kind, .. } => kind.cli_name(),
        }
    }

    /// The target speedup, for RL methods (baselines report the default
    /// `2.0`, which [`Method::parse`] ignores for them).
    pub fn sp(&self) -> f32 {
        match self {
            Method::HeadStartLayers { sp }
            | Method::HeadStartBlocks { sp }
            | Method::HeadStartInner { sp } => *sp,
            Method::Baseline { .. } => 2.0,
        }
    }

    /// The per-layer keep ratio, for baselines (RL methods report the
    /// default `0.5`, which [`Method::parse`] ignores for them).
    pub fn keep_ratio(&self) -> f32 {
        match self {
            Method::Baseline { keep_ratio, .. } => *keep_ratio,
            _ => 0.5,
        }
    }

    /// Builds the HeadStart config for RL methods under a budget.
    /// Returns `None` for baselines.
    pub fn headstart_config(&self, budget: &Budget) -> Option<HeadStartConfig> {
        let sp = match self {
            Method::HeadStartLayers { sp }
            | Method::HeadStartBlocks { sp }
            | Method::HeadStartInner { sp } => *sp,
            Method::Baseline { .. } => return None,
        };
        Some(
            HeadStartConfig::new(sp)
                .max_episodes(budget.rl_episodes)
                .eval_images(budget.rl_eval_images),
        )
    }

    /// Parses a CLI method name plus its `sp`/`keep_ratio` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::BadConfig`] for unknown names.
    pub fn parse(name: &str, sp: f32, keep_ratio: f32) -> Result<Self, RunnerError> {
        match name {
            "headstart" => Ok(Method::HeadStartLayers { sp }),
            "headstart-blocks" => Ok(Method::HeadStartBlocks { sp }),
            "headstart-inner" => Ok(Method::HeadStartInner { sp }),
            other => Ok(Method::Baseline {
                kind: BaselineKind::parse(other)?,
                keep_ratio,
            }),
        }
    }
}

/// Everything a pipeline run needs: data, model, seeds, budget, method
/// and optional checkpoint/artifact paths.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnerConfig {
    /// Human-readable run label (artifact + log prefix).
    pub label: String,
    /// Dataset choice.
    pub data: DataChoice,
    /// Model choice.
    pub model: ModelChoice,
    /// Seed for model init + pre-training.
    pub seed: u64,
    /// Seed for the prune schedule (independent of pre-training).
    pub prune_seed: u64,
    /// Compute budget.
    pub budget: Budget,
    /// What to do to the model.
    pub method: Method,
    /// Checkpoint path: loaded if it exists (skipping pre-training),
    /// written after pre-training otherwise.
    pub checkpoint: Option<PathBuf>,
    /// Run directory for crash-safe journaled runs (`--run-dir`). When
    /// set, the pipeline writes `run.journal.json` plus per-unit
    /// checkpoints there so an interrupted run can be continued with
    /// `hs_run --resume DIR`.
    pub run_dir: Option<PathBuf>,
    /// Structurally compact the pruned network after fine-tuning
    /// (`--compact`): realize masks / deactivated blocks as physically
    /// smaller tensors and write `compact.hsck` next to the journal.
    /// Requires `run_dir`.
    pub compact: bool,
    /// Evaluation worker threads for the REINFORCE search (`--workers`).
    /// `1` evaluates candidates serially on the pipeline thread; `N > 1`
    /// shards each episode's candidate batch across an `hs-coord`
    /// worker fleet. Output is bit-identical for every value; only
    /// wall-clock differs.
    pub workers: usize,
    /// Where to write the JSON run artifact.
    pub artifact: Option<PathBuf>,
    /// Where to write the JSONL telemetry event stream (`--telemetry`).
    pub telemetry: Option<PathBuf>,
    /// Where to dump the Prometheus-text metrics snapshot when the run
    /// ends (`--metrics`).
    pub metrics: Option<PathBuf>,
    /// Stderr verbosity (`--log-level`); `None` keeps the default
    /// ([`Level::Info`]).
    pub log_level: Option<Level>,
}

impl RunnerConfig {
    /// A config with library defaults: CIFAR-like data, quarter-width
    /// VGG-11, HeadStart at sp = 2, full budget, no checkpoint/artifact.
    pub fn new(label: impl Into<String>) -> Self {
        RunnerConfig {
            label: label.into(),
            data: DataChoice::CifarLike,
            model: ModelChoice::new(ModelKind::Vgg11, 0.25),
            seed: 42,
            prune_seed: 42,
            budget: Budget::full(),
            method: Method::HeadStartLayers { sp: 2.0 },
            checkpoint: None,
            run_dir: None,
            compact: false,
            workers: 1,
            artifact: None,
            telemetry: None,
            metrics: None,
            log_level: None,
        }
    }

    /// Parses a config from `--flag value` style arguments (the `hs_run`
    /// CLI). Unknown flags error; every flag has a default.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::BadConfig`] for malformed arguments.
    pub fn from_args(args: &[String]) -> Result<Self, RunnerError> {
        let mut cfg = RunnerConfig::new("hs_run");
        let mut model_name = "vgg11".to_string();
        let mut method_name = "headstart".to_string();
        let mut width = 0.25f32;
        let mut sp = 2.0f32;
        let mut keep_ratio = 0.5f32;
        let mut prune_seed: Option<u64> = None;
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if arg == "--quick" {
                cfg.budget = Budget::quick();
                i += 1;
                continue;
            }
            if arg == "--smoke" {
                cfg.budget = Budget::smoke();
                i += 1;
                continue;
            }
            if arg == "--compact" {
                cfg.compact = true;
                i += 1;
                continue;
            }
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| RunnerError::BadConfig(format!("expected --flag, got `{arg}`")))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| RunnerError::BadConfig(format!("--{key} needs a value")))?;
            let bad = |what: &str| RunnerError::BadConfig(format!("--{key}: bad {what} `{value}`"));
            match key {
                "label" => cfg.label = value.clone(),
                "data" => cfg.data = DataChoice::parse(value)?,
                "model" => model_name = value.clone(),
                "width" => width = value.parse().map_err(|_| bad("float"))?,
                "method" => method_name = value.clone(),
                "sp" => sp = value.parse().map_err(|_| bad("float"))?,
                "keep" => keep_ratio = value.parse().map_err(|_| bad("float"))?,
                "seed" => cfg.seed = value.parse().map_err(|_| bad("integer"))?,
                "prune-seed" => prune_seed = Some(value.parse().map_err(|_| bad("integer"))?),
                "pretrain" => {
                    cfg.budget.pretrain_epochs = value.parse().map_err(|_| bad("integer"))?
                }
                "finetune" => {
                    cfg.budget.finetune_epochs = value.parse().map_err(|_| bad("integer"))?
                }
                "episodes" => cfg.budget.rl_episodes = value.parse().map_err(|_| bad("integer"))?,
                "eval-images" => {
                    cfg.budget.rl_eval_images = value.parse().map_err(|_| bad("integer"))?
                }
                "workers" => {
                    cfg.workers = value.parse().map_err(|_| bad("integer"))?;
                    if cfg.workers == 0 {
                        return Err(RunnerError::BadConfig(
                            "--workers: must be at least 1".to_string(),
                        ));
                    }
                }
                "checkpoint" => cfg.checkpoint = Some(PathBuf::from(value)),
                "run-dir" => cfg.run_dir = Some(PathBuf::from(value)),
                "artifact" => cfg.artifact = Some(PathBuf::from(value)),
                "telemetry" => cfg.telemetry = Some(PathBuf::from(value)),
                "metrics" => cfg.metrics = Some(PathBuf::from(value)),
                "log-level" => {
                    cfg.log_level = Some(Level::parse(value).ok_or_else(|| bad("level"))?)
                }
                other => return Err(RunnerError::BadConfig(format!("unknown flag `--{other}`"))),
            }
            i += 2;
        }
        cfg.model = ModelChoice::parse(&model_name, width)?;
        cfg.method = Method::parse(&method_name, sp, keep_ratio)?;
        cfg.prune_seed = prune_seed.unwrap_or(cfg.seed);
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let cfg = RunnerConfig::from_args(&argv(
            "--label t3 --data cifar --model vgg11 --width 0.25 --method headstart --sp 5 \
             --seed 3 --prune-seed 55 --quick --episodes 9 --artifact out.json",
        ))
        .unwrap();
        assert_eq!(cfg.label, "t3");
        assert_eq!(cfg.data, DataChoice::CifarLike);
        assert_eq!(cfg.method, Method::HeadStartLayers { sp: 5.0 });
        assert_eq!(cfg.seed, 3);
        assert_eq!(cfg.prune_seed, 55);
        // --episodes after --quick overrides just that knob.
        assert_eq!(cfg.budget.rl_episodes, 9);
        assert_eq!(cfg.budget.pretrain_epochs, Budget::quick().pretrain_epochs);
        assert_eq!(
            cfg.artifact.as_deref(),
            Some(std::path::Path::new("out.json"))
        );
    }

    #[test]
    fn parses_baseline_methods() {
        for (name, kind) in [
            ("random", BaselineKind::Random),
            ("l1", BaselineKind::L1),
            ("apoz", BaselineKind::Apoz),
            ("thinet", BaselineKind::ThiNet),
            ("autopruner", BaselineKind::AutoPruner { iterations: 20 }),
        ] {
            let m = Method::parse(name, 2.0, 0.5).unwrap();
            assert_eq!(
                m,
                Method::Baseline {
                    kind,
                    keep_ratio: 0.5
                }
            );
            assert!(m.headstart_config(&Budget::quick()).is_none());
        }
        assert!(Method::parse("nope", 2.0, 0.5).is_err());
    }

    #[test]
    fn rl_methods_get_budgeted_configs() {
        let budget = Budget::quick();
        let cfg = Method::HeadStartLayers { sp: 3.0 }
            .headstart_config(&budget)
            .unwrap();
        assert_eq!(cfg.sp, 3.0);
        assert_eq!(cfg.max_episodes, budget.rl_episodes);
        assert_eq!(cfg.eval_images, budget.rl_eval_images);
    }

    #[test]
    fn rejects_unknown_flags_and_values() {
        assert!(RunnerConfig::from_args(&argv("--bogus 1")).is_err());
        assert!(RunnerConfig::from_args(&argv("--seed abc")).is_err());
        assert!(RunnerConfig::from_args(&argv("--data mnist")).is_err());
        assert!(RunnerConfig::from_args(&argv("--model resnet999")).is_err());
        assert!(RunnerConfig::from_args(&argv("--seed")).is_err());
        assert!(RunnerConfig::from_args(&argv("--log-level loud")).is_err());
    }

    #[test]
    fn parses_workers_flag() {
        assert_eq!(RunnerConfig::new("x").workers, 1);
        let cfg = RunnerConfig::from_args(&argv("--workers 8")).unwrap();
        assert_eq!(cfg.workers, 8);
        assert!(RunnerConfig::from_args(&argv("--workers 0")).is_err());
        assert!(RunnerConfig::from_args(&argv("--workers many")).is_err());
    }

    #[test]
    fn parses_telemetry_flags() {
        let cfg = RunnerConfig::from_args(&argv(
            "--telemetry events.jsonl --metrics run.prom --log-level debug",
        ))
        .unwrap();
        assert_eq!(
            cfg.telemetry.as_deref(),
            Some(std::path::Path::new("events.jsonl"))
        );
        assert_eq!(
            cfg.metrics.as_deref(),
            Some(std::path::Path::new("run.prom"))
        );
        assert_eq!(cfg.log_level, Some(Level::Debug));
        // Defaults stay off so library users never touch global sinks.
        let plain = RunnerConfig::new("x");
        assert!(plain.telemetry.is_none() && plain.metrics.is_none() && plain.log_level.is_none());
    }

    #[test]
    fn run_dir_flag_and_method_names_round_trip() {
        let cfg = RunnerConfig::from_args(&argv("--run-dir runs/a")).unwrap();
        assert_eq!(cfg.run_dir.as_deref(), Some(std::path::Path::new("runs/a")));
        assert!(RunnerConfig::new("x").run_dir.is_none());
        // --compact is a valueless flag and defaults to off.
        let cfg = RunnerConfig::from_args(&argv("--compact --run-dir runs/a --seed 7")).unwrap();
        assert!(cfg.compact);
        assert_eq!(cfg.seed, 7);
        assert!(!RunnerConfig::from_args(&argv("--seed 7")).unwrap().compact);
        for name in [
            "headstart",
            "headstart-blocks",
            "headstart-inner",
            "random",
            "l1",
            "apoz",
            "thinet",
            "autopruner",
        ] {
            let m = Method::parse(name, 3.0, 0.25).unwrap();
            assert_eq!(m.cli_name(), name);
            // Re-parsing the echoed name + parameters reproduces the method.
            assert_eq!(
                Method::parse(m.cli_name(), m.sp(), m.keep_ratio()).unwrap(),
                m
            );
        }
    }

    #[test]
    fn model_names_round_trip() {
        for name in ["vgg11", "vgg16", "resnet20", "resnet38", "lenet", "alexnet"] {
            let m = ModelChoice::parse(name, 0.5).unwrap();
            assert_eq!(m.name(), name);
        }
    }
}
