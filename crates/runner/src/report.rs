//! Reporting plumbing shared by every pipeline: phase stopwatches with
//! recorded stage timings, percentage formatting, and a hand-rolled JSON
//! value for run artifacts (the build is fully offline — no serde).

use std::fmt::Write as _;
use std::path::Path;

use hs_telemetry::{Event, EventKind, Level, Span};

/// Percentage formatting used across all tables.
pub fn pct(x: f32) -> String {
    format!("{:.2}", x * 100.0)
}

/// One timed pipeline stage, as recorded in run artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (`pretrain`, `prune`, `finetune`, …).
    pub name: String,
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
}

/// A labelled stopwatch for experiment phases, backed by a telemetry
/// span: nested phases produce `/`-joined span paths in the JSONL
/// stream, and the start/done progress lines are `Level::Info` log
/// events (rendered on stderr by default, as they always were).
/// [`Phase::end`] returns the elapsed seconds so pipelines can record a
/// [`StageTiming`].
#[derive(Debug)]
pub struct Phase {
    label: String,
    span: Span,
}

impl Phase {
    /// Starts timing a phase and logs it.
    pub fn start(label: &str) -> Self {
        hs_telemetry::log(Level::Info, "phase", format!("{label} ..."));
        Phase {
            label: label.to_string(),
            span: hs_telemetry::span::enter(label),
        }
    }

    /// Ends the phase, logging and returning the elapsed seconds.
    pub fn end(self) -> f64 {
        let seconds = self.span.close();
        if hs_telemetry::enabled(Level::Info) {
            // The duration rides in the event's `secs` slot, not the
            // message, so seeded runs emit identical JSONL prefixes.
            let mut done = Event::new(EventKind::Log, Level::Info, "phase")
                .message(format!("{} done", self.label));
            done.secs = Some(seconds);
            hs_telemetry::emit(done);
        }
        seconds
    }

    /// Ends the phase and records it into a stage list.
    pub fn record(self, stages: &mut Vec<StageTiming>) -> f64 {
        let label = self.label.clone();
        let seconds = self.end();
        stages.push(StageTiming {
            name: label,
            seconds,
        });
        seconds
    }
}

/// A minimal JSON value — enough for run artifacts, nothing more.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite renders as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Renders the value as pretty-printed JSON with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a JSON artifact to disk atomically (tmp + fsync + rename), so
/// a crash mid-write never leaves a truncated artifact behind.
///
/// # Errors
///
/// Propagates filesystem errors (site `artifact` for fault injection).
pub fn write_json(path: impl AsRef<Path>, value: &Json) -> std::io::Result<()> {
    hs_telemetry::io::atomic_write_as(path.as_ref(), "artifact", value.render().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.7239), "72.39");
    }

    #[test]
    fn json_renders_and_escapes() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("a \"quoted\"\nline")),
            ("count".into(), Json::num(3.0)),
            ("ratio".into(), Json::num(0.5)),
            (
                "items".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\\\"quoted\\\"\\nline"));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn json_non_finite_is_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }

    #[test]
    fn phase_records_stage() {
        let mut stages = Vec::new();
        let p = Phase::start("test");
        let secs = p.record(&mut stages);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].name, "test");
        assert!(secs >= 0.0);
    }
}
