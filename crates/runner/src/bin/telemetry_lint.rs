//! `telemetry_lint` — validates a JSONL telemetry event stream against
//! schema version 1 (see `hs_telemetry::schema`). CI runs this on the
//! smoke pipeline's `--telemetry` output instead of depending on jq.
//!
//! ```text
//! telemetry_lint events.jsonl [--require-kind KIND]...
//!     [--require-order A,B]... [--require-fields KIND=F1,F2]...
//! ```
//!
//! Exits non-zero when any line fails validation (including an unknown
//! event kind), when the file is empty, when a `--require-kind` (e.g.
//! `episode`, `span`) never appears in the stream, when a
//! `--require-order A,B` pair is missing or out of order (the first
//! `A` must precede the first `B` — e.g. `degrade,restore` asserts the
//! serving stack degraded before it restored; violations are reported
//! with the line number of the early `B` event), or when a
//! `--require-fields KIND=F1,F2` rule finds an event of `KIND` missing
//! one of the listed fields (reported with the line number of the
//! first offending event — e.g. `serve_request=trace_id,span_id`
//! asserts every request event is trace-tagged). Prints a per-kind
//! event count on success.

use std::collections::BTreeMap;
use std::process::ExitCode;

use hs_telemetry::schema::{parse, validate_line, Json};

fn usage() -> ExitCode {
    eprintln!(
        "usage: telemetry_lint <events.jsonl> [--require-kind KIND]... \
         [--require-order A,B]... [--require-fields KIND=F1,F2]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut ordered: Vec<(String, String)> = Vec::new();
    let mut field_rules: Vec<(String, Vec<String>)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return usage(),
            "--require-kind" => {
                let Some(kind) = args.get(i + 1) else {
                    return usage();
                };
                required.push(kind.clone());
                i += 2;
            }
            "--require-order" => {
                let Some(pair) = args.get(i + 1) else {
                    return usage();
                };
                let Some((a, b)) = pair.split_once(',') else {
                    return usage();
                };
                ordered.push((a.to_string(), b.to_string()));
                i += 2;
            }
            "--require-fields" => {
                let Some(rule) = args.get(i + 1) else {
                    return usage();
                };
                let Some((kind, fields)) = rule.split_once('=') else {
                    return usage();
                };
                let fields: Vec<String> = fields
                    .split(',')
                    .filter(|f| !f.is_empty())
                    .map(String::from)
                    .collect();
                if fields.is_empty() {
                    return usage();
                }
                field_rules.push((kind.to_string(), fields));
                i += 2;
            }
            flag if flag.starts_with("--") => return usage(),
            positional => {
                if path.replace(positional.to_string()).is_some() {
                    return usage();
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("telemetry_lint: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // First offending (line, field) per `--require-fields` rule.
    let mut field_offense: Vec<Option<(usize, String)>> = vec![None; field_rules.len()];
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut first_seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut violations = 0usize;
    let mut total = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        total += 1;
        if let Err(e) = validate_line(line) {
            violations += 1;
            eprintln!("telemetry_lint: {path}:{}: {e}", lineno + 1);
            continue;
        }
        // validate_line guarantees a string `kind` on success.
        let value = parse(line).expect("validated line parses");
        let obj = value.as_obj().expect("validated line is an object");
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .map(String::from)
            .expect("validated line has a kind");
        for (rule_idx, (rule_kind, fields)) in field_rules.iter().enumerate() {
            if rule_kind != &kind || field_offense[rule_idx].is_some() {
                continue;
            }
            let event_fields = obj.get("fields").and_then(Json::as_obj);
            let missing = fields
                .iter()
                .find(|f| event_fields.is_none_or(|m| !m.contains_key(f.as_str())));
            if let Some(field) = missing {
                field_offense[rule_idx] = Some((lineno + 1, field.clone()));
            }
        }
        first_seen.entry(kind.clone()).or_insert(lineno + 1);
        *kinds.entry(kind).or_default() += 1;
    }

    if total == 0 {
        eprintln!("telemetry_lint: {path}: no events");
        return ExitCode::FAILURE;
    }
    if violations > 0 {
        eprintln!("telemetry_lint: {path}: {violations}/{total} lines invalid");
        return ExitCode::FAILURE;
    }
    let mut missing = false;
    for kind in &required {
        if !kinds.contains_key(kind) {
            eprintln!("telemetry_lint: {path}: no `{kind}` events");
            missing = true;
        }
    }
    for (rule_idx, (kind, _)) in field_rules.iter().enumerate() {
        if let Some((line, field)) = &field_offense[rule_idx] {
            eprintln!(
                "telemetry_lint: {path}:{line}: first `{kind}` event missing required field `{field}`"
            );
            missing = true;
        }
    }
    for (a, b) in &ordered {
        match (first_seen.get(a), first_seen.get(b)) {
            (Some(la), Some(lb)) if la < lb => {}
            (Some(la), Some(lb)) => {
                // Anchor the diagnostic at the first out-of-order line
                // (the `B` that arrived early), in the same
                // `path:line:` shape as the `--require-fields` report.
                eprintln!(
                    "telemetry_lint: {path}:{lb}: first `{b}` precedes first `{a}` (line {la})"
                );
                missing = true;
            }
            (first_a, first_b) => {
                if first_a.is_none() {
                    eprintln!("telemetry_lint: {path}: no `{a}` events (required before `{b}`)");
                }
                if first_b.is_none() {
                    eprintln!("telemetry_lint: {path}: no `{b}` events (required after `{a}`)");
                }
                missing = true;
            }
        }
    }
    if missing {
        return ExitCode::FAILURE;
    }
    let summary: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "telemetry_lint: {path}: {total} events ok ({})",
        summary.join(" ")
    );
    ExitCode::SUCCESS
}
