//! `hs_run` — one pipeline run from the command line.
//!
//! ```text
//! hs_run --data cifar --model vgg11 --method headstart --sp 2 \
//!        --checkpoint vgg11.hsck --artifact run.json
//! ```
//!
//! Flags: `--label --data --model --width --method --sp --keep --seed
//! --prune-seed --quick --smoke --pretrain --finetune --episodes
//! --eval-images --checkpoint --artifact --telemetry --metrics
//! --log-level`. See `RunnerConfig::from_args`.

use std::process::ExitCode;

use hs_runner::{pct, run, RunnerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: hs_run [--data cifar|cub] [--model vgg11|vgg16|resnet20|resnet38|lenet|alexnet]\n\
             \x20             [--width F] [--method headstart|headstart-blocks|headstart-inner|\n\
             \x20              random|l1|apoz|thinet|autopruner] [--sp F] [--keep F]\n\
             \x20             [--seed N] [--prune-seed N] [--quick|--smoke]\n\
             \x20             [--pretrain N] [--finetune N] [--episodes N] [--eval-images N]\n\
             \x20             [--checkpoint PATH] [--artifact PATH] [--label NAME]\n\
             \x20             [--telemetry PATH.jsonl] [--metrics PATH.prom]\n\
             \x20             [--log-level error|warn|info|debug|trace]"
        );
        return ExitCode::SUCCESS;
    }
    let cfg = match RunnerConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("hs_run: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&cfg) {
        Ok(report) => {
            println!(
                "{}: accuracy {} -> {} | params {} -> {} ({}% of original)",
                report.label,
                pct(report.original_accuracy),
                pct(report.final_accuracy),
                report.original_cost.total_params,
                report.final_cost.total_params,
                format_args!("{:.1}", report.compression_pct()),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Keep whatever telemetry the failed run buffered.
            hs_telemetry::flush();
            eprintln!("hs_run: {e}");
            ExitCode::FAILURE
        }
    }
}
