//! `hs_run` — one pipeline run from the command line.
//!
//! ```text
//! hs_run --data cifar --model vgg11 --method headstart --sp 2 \
//!        --checkpoint vgg11.hsck --artifact run.json
//! ```
//!
//! Flags: `--label --data --model --width --method --sp --keep --seed
//! --prune-seed --quick --smoke --pretrain --finetune --episodes
//! --eval-images --checkpoint --artifact --telemetry --metrics
//! --log-level --run-dir --compact --workers`. See
//! `RunnerConfig::from_args`.
//!
//! With `--workers N` the REINFORCE search shards each episode's
//! candidate evaluations across `N` coordinator worker threads
//! (`hs-coord`); results are bit-identical for every `N`, only
//! wall-clock differs.
//!
//! With `--run-dir DIR` the run journals its progress into `DIR` (one
//! checkpoint per pruned unit plus `run.journal.json`); after a crash,
//! `hs_run --resume DIR` continues from the last completed unit and
//! produces results bit-identical to the uninterrupted run. Setting
//! `HS_FAULT=kind:site[:n],…` arms the deterministic fault-injection
//! harness (kinds: `io_error io_flaky corrupt truncate kill_after
//! nan_reward worker_lost`).

use std::path::Path;
use std::process::ExitCode;

use hs_runner::{arm_from_env, pct, resume_run, run, PipelineReport, RunnerConfig, RunnerError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: hs_run [--data cifar|cub] [--model vgg11|vgg16|resnet20|resnet38|lenet|alexnet]\n\
             \x20             [--width F] [--method headstart|headstart-blocks|headstart-inner|\n\
             \x20              random|l1|apoz|thinet|autopruner] [--sp F] [--keep F]\n\
             \x20             [--seed N] [--prune-seed N] [--quick|--smoke]\n\
             \x20             [--pretrain N] [--finetune N] [--episodes N] [--eval-images N]\n\
             \x20             [--checkpoint PATH] [--artifact PATH] [--label NAME]\n\
             \x20             [--telemetry PATH.jsonl] [--metrics PATH.prom]\n\
             \x20             [--log-level error|warn|info|debug|trace]\n\
             \x20             [--run-dir DIR] [--compact] [--workers N]\n\
             \x20      hs_run --resume DIR\n\
             \n\
             \x20 --run-dir DIR  journal the run into DIR (crash-safe, resumable)\n\
             \x20 --compact      physically shrink the pruned model into DIR/compact.hsck\n\
             \x20 --workers N    shard RL candidate evaluation across N worker threads\n\
             \x20                (bit-identical output for any N; default 1 = serial)\n\
             \x20 --resume DIR   continue an interrupted journaled run\n\
             \x20 HS_FAULT=kind:site[:n],...  arm deterministic fault injection"
        );
        return ExitCode::SUCCESS;
    }
    if let Err(e) = arm_from_env() {
        eprintln!("hs_run: {e}");
        return ExitCode::FAILURE;
    }
    let outcome = if let Some(pos) = args.iter().position(|a| a == "--resume") {
        match args.get(pos + 1) {
            Some(dir) if args.len() == 2 => resume_run(Path::new(dir)),
            Some(_) => Err(RunnerError::BadConfig(
                "--resume takes no other flags (the journal carries the config)".to_string(),
            )),
            None => Err(RunnerError::BadConfig(
                "--resume needs a run directory".to_string(),
            )),
        }
    } else {
        match RunnerConfig::from_args(&args) {
            Ok(cfg) => run(&cfg),
            Err(e) => {
                eprintln!("hs_run: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match outcome {
        Ok(report) => {
            print_summary(&report);
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Keep whatever telemetry the failed run buffered.
            hs_telemetry::flush();
            eprintln!("hs_run: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_summary(report: &PipelineReport) {
    println!(
        "{}: accuracy {} -> {} | params {} -> {} ({}% of original)",
        report.label,
        pct(report.original_accuracy),
        pct(report.final_accuracy),
        report.original_cost.total_params,
        report.final_cost.total_params,
        format_args!("{:.1}", report.compression_pct()),
    );
    if let Some(c) = &report.compact {
        println!(
            "{}: compact {} | flop speedup {:.2}x (target {:.1}x) | {} unit(s) rewritten",
            report.label, c.checkpoint, c.achieved_speedup, c.target_speedup, c.units
        );
    }
}
