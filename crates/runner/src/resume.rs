//! Crash-safe journaled pipeline runs and the `--resume` path.
//!
//! A journaled run (`--run-dir DIR`) executes the same pipeline as
//! [`crate::pipeline::run`] but checkpoints its progress after every
//! stage: the pre-trained model lands in `DIR/pretrained.hsck`, every
//! pruned unit writes `DIR/unit-NN.hsck` plus a journal entry carrying
//! the learned inception and the complete prune-RNG state, and the
//! finished model lands in `DIR/final.hsck` with the journal marked
//! finalized. All writes are atomic, so the directory is consistent at
//! every instant.
//!
//! [`resume_run`] replays that journal: it reloads the pre-trained
//! checkpoint (re-pretraining deterministically if it went corrupt),
//! walks the unit records **backwards past any checkpoint that fails
//! its checksum** to the last verifying one, restores the RNG from that
//! unit's snapshot, and continues with the first incomplete unit. Since
//! the per-unit loop is a faithful mirror of the uninterrupted one and
//! the RNG snapshot is exact, a killed-and-resumed seeded run produces
//! **bit-identical** masks, weights and accuracies — the parity the
//! crash/resume test suite asserts.
//!
//! Resume granularity is per unit for the per-layer methods
//! ([`Method::HeadStartLayers`] and [`Method::Baseline`], whose unit
//! loops live here) and per stage for the block-level methods (their
//! single RL episode loop reruns from the pre-trained checkpoint, which
//! is equally deterministic because the prune RNG is freshly seeded).

use std::path::Path;
use std::time::Instant;

use hs_coord::executor_for;
use hs_core::{EngineObserver, LayerPruner, TelemetryObserver};
use hs_nn::accounting::{analyze, NetworkCost};
use hs_nn::surgery::{conv_sites, prune_feature_maps};
use hs_nn::{checkpoint, train, Network};
use hs_pruning::driver::LayerTrace;
use hs_pruning::ScoreContext;
use hs_telemetry::{Event, EventKind, Level, TelemetryConfig};
use hs_tensor::Rng;

use crate::config::{Method, RunnerConfig};
use crate::error::RunnerError;
use crate::faults::crash_point;
use crate::journal::{Journal, Stage, UnitRecord};
use crate::manifest::ServeManifest;
use crate::pipeline::{prepare, CompactSummary, PipelineReport, Prepared};
use crate::report::{write_json, Phase, StageTiming};

/// File name of the pre-trained checkpoint inside a run directory
/// (used when the config does not name its own checkpoint path).
pub const PRETRAINED_CHECKPOINT: &str = "pretrained.hsck";

/// File name of the finished model inside a run directory.
pub const FINAL_CHECKPOINT: &str = "final.hsck";

/// File name of the structurally compacted model inside a run
/// directory (written by the `--compact` stage).
pub const COMPACT_CHECKPOINT: &str = "compact.hsck";

/// Scoring-subset size for baseline criteria, matching
/// `hs_pruning::driver::prune_whole_model` so journaled baseline runs
/// stay bit-identical to monolithic ones.
const SCORING_IMAGES: usize = 64;

/// Resumes an interrupted journaled run from its run directory: the
/// journal supplies the full configuration, so no other flags are
/// needed. Completed work is loaded from checkpoints, not redone;
/// corrupt checkpoints are detected by their checksums and rewound
/// past.
///
/// # Errors
///
/// [`RunnerError::Journal`] when `dir` holds no usable journal, plus
/// every pipeline error.
pub fn resume_run(dir: &Path) -> Result<PipelineReport, RunnerError> {
    let journal = Journal::load(dir)?;
    let cfg = journal.to_config(dir);
    if cfg.telemetry.is_some() || cfg.log_level.is_some() {
        hs_telemetry::configure(&TelemetryConfig {
            stderr_level: cfg.log_level,
            jsonl: cfg.telemetry.clone(),
        })?;
    }
    run_journaled(&cfg, dir, Some(journal))
}

/// Runs a journaled pipeline in `dir`. With `resume: None` this is a
/// fresh run (any previous journal in the directory is replaced);
/// with a loaded journal it continues from the first incomplete unit.
///
/// # Errors
///
/// Propagates every stage's errors, including
/// [`RunnerError::InjectedCrash`] under fault injection.
pub(crate) fn run_journaled(
    cfg: &RunnerConfig,
    dir: &Path,
    resume: Option<Journal>,
) -> Result<PipelineReport, RunnerError> {
    std::fs::create_dir_all(dir)?;
    let mut cfg = cfg.clone();
    if cfg.checkpoint.is_none() {
        cfg.checkpoint = Some(dir.join(PRETRAINED_CHECKPOINT));
    }
    let pipeline_span = hs_telemetry::span!(
        "pipeline",
        "label" => cfg.label.clone(),
        "method" => cfg.method.label(),
    );
    let resuming = resume.is_some();
    let prepared = prepare(&cfg)?;
    crash_point("pretrain")?;

    let mut journal = match resume {
        Some(mut journal) => {
            // prepare() is deterministic, so a differing original
            // accuracy means the pre-trained checkpoint was replaced
            // (e.g. re-pretrained after corruption) — note it and trust
            // the freshly computed value.
            if journal.original_accuracy.to_bits() != prepared.original_accuracy.to_bits() {
                hs_telemetry::log(
                    Level::Warn,
                    "runner",
                    "pre-trained model changed since the journal was written".to_string(),
                );
                journal.original_accuracy = prepared.original_accuracy;
            }
            hs_telemetry::emit(
                Event::new(EventKind::Resume, Level::Info, "runner")
                    .message(format!("resuming from {}", Journal::path(dir).display()))
                    .field("journal", Journal::path(dir).display().to_string())
                    .field("units_done", journal.units.len() as u64)
                    .field("stage", journal.stage.as_str()),
            );
            journal
        }
        None => Journal::new(cfg.clone(), prepared.original_accuracy),
    };
    journal.save(dir)?;

    let mut report = match &cfg.method {
        Method::HeadStartLayers { .. } | Method::Baseline { .. } => {
            run_units(&cfg, dir, &prepared, &mut journal)?
        }
        Method::HeadStartBlocks { .. } | Method::HeadStartInner { .. } => {
            run_stagewise(&cfg, dir, &prepared, &mut journal, resuming)?
        }
    };

    if cfg.compact {
        report.compact = Some(compact_stage(&cfg, dir, &prepared, &mut report.stages)?);
    }

    // The run is finalized: pair the dense and pruned checkpoints in a
    // serve manifest so `hs_serve` can load both slots without flags.
    let manifest = serve_manifest(&cfg, dir, &prepared, &report);
    manifest.save(dir)?;
    hs_telemetry::artifact(&cfg.label, &ServeManifest::path(dir));

    if let Some(path) = &cfg.artifact {
        write_json(path, &report.to_json())?;
        hs_telemetry::artifact(&cfg.label, path);
    }
    pipeline_span.close();
    if let Some(path) = &cfg.metrics {
        hs_telemetry::io::atomic_write_as(
            path,
            "metrics",
            hs_telemetry::metrics::render_prometheus().as_bytes(),
        )?;
        hs_telemetry::artifact(&cfg.label, path);
    }
    hs_telemetry::flush_metrics();
    Ok(report)
}

/// The `--compact` stage: loads the finalized model, physically
/// realizes every remaining logical pruning decision
/// ([`hs_nn::compact::compact`]), and writes the result to
/// `compact.hsck` (fault site `compact_write`). The write is verified
/// by re-loading; a checkpoint that fails its checksums is rewritten
/// once (with a `recovery` event) before the failure is fatal, which is
/// exactly enough to absorb a one-shot injected corruption.
fn compact_stage(
    cfg: &RunnerConfig,
    dir: &Path,
    prepared: &Prepared,
    stages: &mut Vec<StageTiming>,
) -> Result<CompactSummary, RunnerError> {
    let phase = Phase::start("compact");
    let final_net = checkpoint::load(dir.join(FINAL_CHECKPOINT))?;
    let compacted =
        hs_nn::compact::compact(&final_net, prepared.ds.channels(), prepared.ds.image_size())?;
    let path = dir.join(COMPACT_CHECKPOINT);
    let bytes = checkpoint::to_bytes(&compacted.net)?;
    hs_telemetry::io::atomic_write_as(&path, "compact_write", &bytes)?;
    if let Err(e) = checkpoint::load(&path) {
        if !matches!(
            e.kind(),
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
        ) {
            return Err(RunnerError::Io(e));
        }
        hs_telemetry::emit(
            Event::new(EventKind::Recovery, Level::Warn, "runner")
                .message(format!(
                    "compact checkpoint {} failed verification ({e}); rewriting",
                    path.display()
                ))
                .field("reason", "corrupt_checkpoint")
                .field("action", "rewrite_compact"),
        );
        hs_telemetry::io::atomic_write_as(&path, "compact_write", &bytes)?;
        checkpoint::load(&path)?;
    }
    hs_telemetry::artifact(&cfg.label, &path);
    phase.record(stages);
    let flops = compacted.report.flops_after;
    Ok(CompactSummary {
        checkpoint: COMPACT_CHECKPOINT.to_string(),
        params: compacted.report.params_after,
        flops,
        target_speedup: f64::from(cfg.method.sp()),
        achieved_speedup: prepared.original_cost.total_flops as f64 / flops.max(1) as f64,
        units: compacted.report.changes.len(),
    })
}

/// Builds the serve manifest for a finalized journaled run: the dense
/// slot is the pre-trained checkpoint (stored relative when it lives in
/// the run directory), the pruned slot is `final.hsck`.
fn serve_manifest(
    cfg: &RunnerConfig,
    dir: &Path,
    prepared: &Prepared,
    report: &PipelineReport,
) -> ServeManifest {
    let dense = match &cfg.checkpoint {
        Some(p) if p.parent() == Some(dir) => p
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string()),
        Some(p) => p.display().to_string(),
        None => PRETRAINED_CHECKPOINT.to_string(),
    };
    ServeManifest {
        label: cfg.label.clone(),
        data: cfg.data,
        model: cfg.model,
        sp: cfg.method.sp(),
        dense,
        pruned: FINAL_CHECKPOINT.to_string(),
        dense_accuracy: prepared.original_accuracy,
        pruned_accuracy: report.final_accuracy,
        dense_params: prepared.original_cost.total_params,
        pruned_params: report.final_cost.total_params,
        dense_flops: prepared.original_cost.total_flops,
        pruned_flops: report.final_cost.total_flops,
        pruned_compact: report.compact.as_ref().map(|c| c.checkpoint.clone()),
    }
}

/// The journaled per-unit pruning loop shared by the per-layer methods.
/// Each iteration mirrors one unit of the monolithic drivers
/// (`HeadStartPruner::prune_model_observed` /
/// `hs_pruning::driver::prune_whole_model`), then checkpoints the model
/// and journals the unit before crossing the `prune_unit` crash point.
fn run_units(
    cfg: &RunnerConfig,
    dir: &Path,
    prepared: &Prepared,
    journal: &mut Journal,
) -> Result<PipelineReport, RunnerError> {
    let label = cfg.method.label();
    let phase = Phase::start(&format!("prune: {label}"));
    let start_time = Instant::now();
    let ds = &prepared.ds;
    let ft = prepared.finetune();

    let (mut net, mut rng, start) = restore_prune_state(dir, prepared, journal, cfg.prune_seed)?;

    // The evaluation worker fleet lives for the whole prune stage; it is
    // dropped (emitting `worker_done` telemetry and the utilization
    // gauge) when this function returns, before the metrics flush.
    let mut executor = executor_for(cfg.workers, cfg.prune_seed);

    // Method-specific unit machinery, built fresh either way: the layer
    // pruner and criteria carry no state across units.
    enum Units {
        HeadStart {
            pruner: LayerPruner,
            observer: TelemetryObserver,
        },
        Baseline {
            criterion: Box<dyn hs_pruning::PruningCriterion>,
            keep_ratio: f32,
            scoring_images: hs_tensor::Tensor,
            scoring_labels: Vec<usize>,
        },
    }
    let mut units = match &cfg.method {
        Method::HeadStartLayers { .. } => {
            let hs_cfg = cfg
                .method
                .headstart_config(&prepared.budget)
                .ok_or_else(|| {
                    RunnerError::BadConfig("HeadStart method without an RL config".to_string())
                })?;
            let observer = TelemetryObserver::from_config(&hs_cfg).with_trace_seed(cfg.prune_seed);
            Units::HeadStart {
                pruner: LayerPruner::new(hs_cfg),
                observer,
            }
        }
        Method::Baseline { kind, keep_ratio } => {
            if !(0.0..=1.0).contains(keep_ratio) || *keep_ratio == 0.0 {
                return Err(RunnerError::BadConfig(format!(
                    "keep ratio {keep_ratio} outside (0, 1]"
                )));
            }
            let scoring_n = SCORING_IMAGES.min(ds.train_labels.len());
            let idx: Vec<usize> = (0..scoring_n).collect();
            Units::Baseline {
                criterion: kind.build(),
                keep_ratio: *keep_ratio,
                scoring_images: ds.train_images.index_select(0, &idx)?,
                scoring_labels: ds.train_labels[..scoring_n].to_vec(),
            }
        }
        _ => unreachable!("run_units only handles per-layer methods"),
    };

    let conv_count = net.conv_indices().len();
    for ordinal in start..conv_count {
        let conv_node = net.conv_indices()[ordinal];
        let maps_before = net.conv(conv_node)?.out_channels();
        let keep = match &mut units {
            Units::HeadStart { pruner, observer } => {
                observer.on_unit_start("layer", ordinal);
                let decision = pruner.prune_executed(
                    &mut net,
                    ordinal,
                    ds,
                    &mut rng,
                    observer,
                    executor.as_mut(),
                )?;
                prune_feature_maps(&mut net, conv_node, &decision.keep)?;
                decision.keep
            }
            Units::Baseline {
                criterion,
                keep_ratio,
                scoring_images,
                scoring_labels,
            } => {
                let site = conv_sites(&net)[ordinal];
                let keep_count =
                    ((maps_before as f32 * *keep_ratio).round() as usize).clamp(1, maps_before);
                let keep = {
                    let mut ctx =
                        ScoreContext::new(&mut net, site, scoring_images, scoring_labels, &mut rng);
                    criterion.keep_set(&mut ctx, keep_count)?
                };
                prune_feature_maps(&mut net, site.conv, &keep)?;
                criterion.post_surgery(&mut net, site, &keep)?;
                keep
            }
        };
        let inception_accuracy = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
        ft.run(&mut net, &ds.train_images, &ds.train_labels, &mut rng)?;
        let finetuned_accuracy = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
        let cost = analyze(&net, ds.channels(), ds.image_size())?;

        let name = format!("unit-{ordinal:02}.hsck");
        checkpoint::save(&net, dir.join(&name))?;
        journal.units.push(UnitRecord {
            ordinal,
            conv_node,
            maps_before,
            keep,
            inception_accuracy,
            finetuned_accuracy,
            params_after: cost.total_params,
            flops_after: cost.total_flops,
            checkpoint: name,
            rng_after: rng.snapshot(),
        });
        journal.save(dir)?;
        crash_point("prune_unit")?;
    }

    let final_accuracy = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
    let final_cost = analyze(&net, ds.channels(), ds.image_size())?;
    checkpoint::save(&net, dir.join(FINAL_CHECKPOINT))?;
    journal.stage = Stage::Finalized;
    journal.final_accuracy = Some(final_accuracy);
    journal.save(dir)?;
    crash_point("finalize")?;

    phase.end();
    let mut stages = prepared.stages.clone();
    stages.push(StageTiming {
        name: format!("prune:{label}"),
        seconds: start_time.elapsed().as_secs_f64(),
    });
    Ok(report_from_journal(
        cfg,
        prepared,
        journal,
        final_cost,
        final_accuracy,
        stages,
    ))
}

/// Restores the pruning state for a (possibly resumed) per-unit run:
/// walks the journal's unit records from the newest backwards until a
/// checkpoint verifies, truncating records whose checkpoints are
/// corrupt or missing (each rewind emits a `recovery` event). Falls
/// back to the pre-trained model and a freshly seeded prune RNG when no
/// unit survives.
fn restore_prune_state(
    dir: &Path,
    prepared: &Prepared,
    journal: &mut Journal,
    prune_seed: u64,
) -> Result<(Network, Rng, usize), RunnerError> {
    let mut rewound = false;
    while let Some(last) = journal.units.last() {
        let path = dir.join(&last.checkpoint);
        match checkpoint::load(&path) {
            Ok(net) => {
                let rng = Rng::from_snapshot(last.rng_after);
                let start = last.ordinal + 1;
                if rewound {
                    journal.save(dir)?;
                }
                return Ok((net, rng, start));
            }
            Err(e) => {
                hs_telemetry::emit(
                    Event::new(EventKind::Recovery, Level::Warn, "runner")
                        .message(format!(
                            "unit {} checkpoint failed verification ({e}); rewinding",
                            last.ordinal
                        ))
                        .field("reason", "corrupt_checkpoint")
                        .field("action", "rewind_unit")
                        .field("ordinal", last.ordinal as u64),
                );
                journal.units.pop();
                rewound = true;
            }
        }
    }
    if rewound {
        journal.save(dir)?;
    }
    Ok((prepared.net.clone(), Rng::seed_from(prune_seed), 0))
}

/// Stage-granular journaling for the block-level methods: the whole
/// prune stage either completed (journal finalized, final checkpoint on
/// disk) or reruns deterministically from the pre-trained model.
fn run_stagewise(
    cfg: &RunnerConfig,
    dir: &Path,
    prepared: &Prepared,
    journal: &mut Journal,
    resuming: bool,
) -> Result<PipelineReport, RunnerError> {
    if resuming && journal.stage == Stage::Finalized {
        if let Ok(net) = checkpoint::load(dir.join(FINAL_CHECKPOINT)) {
            let final_cost = analyze(&net, prepared.ds.channels(), prepared.ds.image_size())?;
            let final_accuracy = journal.final_accuracy.ok_or_else(|| {
                RunnerError::Journal("finalized journal without a final accuracy".to_string())
            })?;
            return Ok(report_from_journal(
                cfg,
                prepared,
                journal,
                final_cost,
                final_accuracy,
                prepared.stages.clone(),
            ));
        }
        // The final checkpoint went corrupt: redo the stage (the prune
        // RNG is freshly seeded, so the rerun is bit-identical).
        hs_telemetry::emit(
            Event::new(EventKind::Recovery, Level::Warn, "runner")
                .message("final checkpoint failed verification; redoing prune stage".to_string())
                .field("reason", "corrupt_checkpoint")
                .field("action", "redo_stage"),
        );
    }
    let mut executor = executor_for(cfg.workers, cfg.prune_seed);
    let method_run = prepared.run_method_with(&cfg.method, cfg.prune_seed, executor.as_mut())?;
    drop(executor);
    checkpoint::save(&method_run.net, dir.join(FINAL_CHECKPOINT))?;
    journal.stage = Stage::Finalized;
    journal.final_accuracy = Some(method_run.final_accuracy);
    journal.save(dir)?;
    crash_point("finalize")?;
    let mut stages = prepared.stages.clone();
    stages.push(StageTiming {
        name: format!("prune:{}", method_run.label),
        seconds: method_run.seconds,
    });
    Ok(PipelineReport {
        label: cfg.label.clone(),
        original_accuracy: prepared.original_accuracy,
        final_accuracy: method_run.final_accuracy,
        original_cost: prepared.original_cost.clone(),
        final_cost: method_run.cost,
        traces: method_run.traces,
        stages,
        compact: None,
        workers: cfg.workers,
    })
}

fn report_from_journal(
    cfg: &RunnerConfig,
    prepared: &Prepared,
    journal: &Journal,
    final_cost: NetworkCost,
    final_accuracy: f32,
    stages: Vec<StageTiming>,
) -> PipelineReport {
    let traces = journal
        .units
        .iter()
        .map(|u| LayerTrace {
            conv_node: u.conv_node,
            conv_ordinal: u.ordinal,
            maps_before: u.maps_before,
            maps_after: u.keep.len(),
            params_after: u.params_after,
            flops_after: u.flops_after,
            inception_accuracy: u.inception_accuracy,
            finetuned_accuracy: u.finetuned_accuracy,
        })
        .collect();
    PipelineReport {
        label: cfg.label.clone(),
        original_accuracy: journal.original_accuracy,
        final_accuracy,
        original_cost: prepared.original_cost.clone(),
        final_cost,
        traces,
        stages,
        compact: None,
        workers: cfg.workers,
    }
}
