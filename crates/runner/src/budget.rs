//! Budget profiles: how much compute a pipeline run spends on each
//! phase. The recorded experiment numbers come from [`Budget::full`];
//! `--quick` swaps in a ~10× cheaper profile for smoke testing, and the
//! runner CLI can override any single knob.

/// Budget profile of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Epochs used to pre-train the original model.
    pub pretrain_epochs: usize,
    /// Fine-tuning epochs after pruning each layer.
    pub finetune_epochs: usize,
    /// RL episode cap per layer.
    pub rl_episodes: usize,
    /// Evaluation-split size for RL rewards.
    pub rl_eval_images: usize,
}

impl Budget {
    /// The full budget used for the recorded results.
    pub fn full() -> Self {
        Budget {
            pretrain_epochs: 14,
            finetune_epochs: 3,
            rl_episodes: 60,
            rl_eval_images: 64,
        }
    }

    /// A ~10× cheaper smoke-test budget.
    pub fn quick() -> Self {
        Budget {
            pretrain_epochs: 2,
            finetune_epochs: 1,
            rl_episodes: 12,
            rl_eval_images: 24,
        }
    }

    /// A minimal budget for CI smoke runs: just enough work to cross
    /// every pipeline stage.
    pub fn smoke() -> Self {
        Budget {
            pretrain_epochs: 1,
            finetune_epochs: 0,
            rl_episodes: 4,
            rl_eval_images: 8,
        }
    }

    /// Parses the budget from the process arguments (`--quick`).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            hs_telemetry::log(
                hs_telemetry::Level::Warn,
                "budget",
                "--quick: reduced budgets, numbers will be rough".to_string(),
            );
            Budget::quick()
        } else {
            Budget::full()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_ordered() {
        let f = Budget::full();
        let q = Budget::quick();
        let s = Budget::smoke();
        assert!(q.pretrain_epochs < f.pretrain_epochs);
        assert!(q.rl_episodes < f.rl_episodes);
        assert!(s.rl_episodes <= q.rl_episodes);
    }
}
