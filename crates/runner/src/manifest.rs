//! The serve manifest: `serve.manifest.json`, written when a journaled
//! pipeline run finalizes. It pairs the **dense** pre-trained checkpoint
//! with the **pruned** inception checkpoint plus everything `hs_serve`
//! needs to load and drive them — dataset/model choice, the target
//! speedup, and the measured accuracy/cost of each slot — so graceful
//! degradation can hot-swap between the two models of *one* run without
//! any extra flags.
//!
//! Checkpoint paths are stored as written (the run directory's own
//! files stay relative) and resolved against the manifest's directory
//! on load, so a moved run directory still serves. Reading uses the
//! workspace's own JSON parser ([`hs_telemetry::schema::parse`]);
//! writing goes through the atomic writer like every other artifact.

use std::path::{Path, PathBuf};

use hs_telemetry::schema;

use crate::config::{DataChoice, ModelChoice};
use crate::error::RunnerError;
use crate::report::Json;

/// File name of the serve manifest inside a run directory.
pub const MANIFEST_FILE: &str = "serve.manifest.json";

/// Manifest format version (bumped on breaking layout changes).
pub const MANIFEST_VERSION: u64 = 1;

/// Everything `hs_serve` needs to serve one finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeManifest {
    /// Human-readable run label.
    pub label: String,
    /// Dataset the models were trained on (request inputs are drawn
    /// from its deterministic test split).
    pub data: DataChoice,
    /// Architecture + width of the dense model.
    pub model: ModelChoice,
    /// The run's target speedup `sp` (dense FLOPs / pruned FLOPs goal).
    pub sp: f32,
    /// Dense (pre-trained) checkpoint path, relative to the manifest's
    /// directory unless absolute.
    pub dense: String,
    /// Pruned (inception) checkpoint path, same resolution rule.
    pub pruned: String,
    /// Test accuracy of the dense model.
    pub dense_accuracy: f32,
    /// Test accuracy of the pruned model.
    pub pruned_accuracy: f32,
    /// Parameter count of the dense model.
    pub dense_params: u64,
    /// Parameter count of the pruned model.
    pub pruned_params: u64,
    /// MAC count of the dense model.
    pub dense_flops: u64,
    /// MAC count of the pruned model.
    pub pruned_flops: u64,
    /// Structurally compacted variant of the pruned checkpoint, when
    /// the run's `--compact` stage produced one (same resolution rule
    /// as `pruned`). `hs_serve` prefers it for the degraded tier and
    /// falls back to the masked-dense `pruned` checkpoint when absent.
    pub pruned_compact: Option<String>,
}

impl ServeManifest {
    /// The manifest path inside a run directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Atomically writes the manifest into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (site `artifact` for fault
    /// injection).
    pub fn save(&self, dir: &Path) -> Result<(), RunnerError> {
        let bytes = self.to_json().render();
        hs_telemetry::io::atomic_write_as(&ServeManifest::path(dir), "artifact", bytes.as_bytes())?;
        Ok(())
    }

    /// Loads and validates a manifest. `path` may be the manifest file
    /// itself or a run directory containing one.
    ///
    /// # Errors
    ///
    /// [`RunnerError::BadConfig`] when the file is missing, unparsable,
    /// or structurally wrong; the message names the first problem.
    pub fn load(path: &Path) -> Result<ServeManifest, RunnerError> {
        let path = if path.is_dir() {
            ServeManifest::path(path)
        } else {
            path.to_path_buf()
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| RunnerError::BadConfig(format!("{}: {e}", path.display())))?;
        let value = schema::parse(&text)
            .map_err(|e| RunnerError::BadConfig(format!("{}: {e}", path.display())))?;
        ServeManifest::from_json(&value)
            .map_err(|e| RunnerError::BadConfig(format!("{}: {e}", path.display())))
    }

    /// The dense checkpoint path resolved against the manifest's
    /// directory.
    pub fn dense_path(&self, manifest_dir: &Path) -> PathBuf {
        resolve(manifest_dir, &self.dense)
    }

    /// The pruned checkpoint path resolved against the manifest's
    /// directory.
    pub fn pruned_path(&self, manifest_dir: &Path) -> PathBuf {
        resolve(manifest_dir, &self.pruned)
    }

    /// The compacted pruned checkpoint path resolved against the
    /// manifest's directory, when the manifest records one.
    pub fn pruned_compact_path(&self, manifest_dir: &Path) -> Option<PathBuf> {
        self.pruned_compact
            .as_ref()
            .map(|p| resolve(manifest_dir, p))
    }

    /// How much cheaper one pruned inference is than a dense one, as a
    /// multiplier in (0, 1]: the measured FLOP ratio, falling back to
    /// the configured `1/sp` when a count is missing.
    pub fn pruned_cost_scale(&self) -> f64 {
        let ratio = if self.dense_flops > 0 && self.pruned_flops > 0 {
            self.pruned_flops as f64 / self.dense_flops as f64
        } else if self.sp > 1.0 {
            1.0 / f64::from(self.sp)
        } else {
            1.0
        };
        ratio.clamp(0.01, 1.0)
    }

    /// Renders the manifest as a JSON value. The `pruned_compact` key
    /// is emitted only when set, so manifests from runs without a
    /// compact stage are byte-identical to pre-compaction ones.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::num(MANIFEST_VERSION as f64)),
            ("label".into(), Json::str(self.label.clone())),
            ("data".into(), Json::str(self.data.name())),
            ("model".into(), Json::str(self.model.name())),
            ("width".into(), Json::num(f64::from(self.model.width))),
            ("sp".into(), Json::num(f64::from(self.sp))),
            ("dense".into(), Json::str(self.dense.clone())),
            ("pruned".into(), Json::str(self.pruned.clone())),
            (
                "dense_accuracy".into(),
                Json::num(f64::from(self.dense_accuracy)),
            ),
            (
                "pruned_accuracy".into(),
                Json::num(f64::from(self.pruned_accuracy)),
            ),
            ("dense_params".into(), hex(self.dense_params)),
            ("pruned_params".into(), hex(self.pruned_params)),
            ("dense_flops".into(), hex(self.dense_flops)),
            ("pruned_flops".into(), hex(self.pruned_flops)),
        ];
        if let Some(p) = &self.pruned_compact {
            fields.push(("pruned_compact".into(), Json::str(p.clone())));
        }
        Json::Obj(fields)
    }

    /// Parses a manifest from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(value: &schema::Json) -> Result<ServeManifest, String> {
        let obj = value.as_obj().ok_or("manifest is not a JSON object")?;
        let version = num(obj, "version")? as u64;
        if version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        Ok(ServeManifest {
            label: str_field(obj, "label")?,
            data: DataChoice::parse(&str_field(obj, "data")?).map_err(|e| e.to_string())?,
            model: ModelChoice::parse(&str_field(obj, "model")?, num(obj, "width")? as f32)
                .map_err(|e| e.to_string())?,
            sp: num(obj, "sp")? as f32,
            dense: str_field(obj, "dense")?,
            pruned: str_field(obj, "pruned")?,
            dense_accuracy: num(obj, "dense_accuracy")? as f32,
            pruned_accuracy: num(obj, "pruned_accuracy")? as f32,
            dense_params: hex_field(obj, "dense_params")?,
            pruned_params: hex_field(obj, "pruned_params")?,
            dense_flops: hex_field(obj, "dense_flops")?,
            pruned_flops: hex_field(obj, "pruned_flops")?,
            // Optional: absent in manifests written before the compact
            // stage existed (still version 1).
            pruned_compact: match obj.get("pruned_compact") {
                None | Some(schema::Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .map(String::from)
                        .ok_or("`pruned_compact` is not a string")?,
                ),
            },
        })
    }
}

fn resolve(dir: &Path, stored: &str) -> PathBuf {
    let p = Path::new(stored);
    if p.is_absolute() {
        p.to_path_buf()
    } else {
        dir.join(p)
    }
}

/// A u64 as a JSON hex string, matching the run journal's convention
/// (JSON numbers are doubles and would round above 2⁵³).
fn hex(v: u64) -> Json {
    Json::str(format!("{v:#x}"))
}

fn parse_hex(s: &str) -> Result<u64, String> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("`{s}` is not a 0x-prefixed hex string"))?;
    u64::from_str_radix(digits, 16).map_err(|_| format!("`{s}` is not a valid hex u64"))
}

fn num(obj: &std::collections::BTreeMap<String, schema::Json>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(schema::Json::as_num)
        .ok_or_else(|| format!("missing numeric `{key}`"))
}

fn str_field(
    obj: &std::collections::BTreeMap<String, schema::Json>,
    key: &str,
) -> Result<String, String> {
    obj.get(key)
        .and_then(schema::Json::as_str)
        .map(String::from)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn hex_field(
    obj: &std::collections::BTreeMap<String, schema::Json>,
    key: &str,
) -> Result<u64, String> {
    let s = str_field(obj, key)?;
    parse_hex(&s).map_err(|e| format!("`{key}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeManifest {
        ServeManifest {
            label: "manifest-test".into(),
            data: DataChoice::CifarLike,
            model: ModelChoice::parse("lenet", 1.0).unwrap(),
            sp: 2.0,
            dense: "pretrained.hsck".into(),
            pruned: "final.hsck".into(),
            dense_accuracy: 0.5,
            pruned_accuracy: 0.375,
            dense_params: (1 << 60) + 3, // would round as a JSON double
            pruned_params: 1234,
            dense_flops: 8_000_000,
            pruned_flops: 2_000_000,
            pruned_compact: Some("compact.hsck".into()),
        }
    }

    #[test]
    fn manifest_round_trips_exactly() {
        let manifest = sample();
        let text = manifest.to_json().render();
        let parsed = ServeManifest::from_json(&schema::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn manifest_saves_loads_and_resolves_paths() {
        let dir = std::env::temp_dir().join(format!("hs-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = sample();
        manifest.save(&dir).unwrap();
        // Load by directory and by explicit file path.
        assert_eq!(ServeManifest::load(&dir).unwrap(), manifest);
        let by_file = ServeManifest::load(&ServeManifest::path(&dir)).unwrap();
        assert_eq!(by_file.dense_path(&dir), dir.join("pretrained.hsck"));
        assert_eq!(by_file.pruned_path(&dir), dir.join("final.hsck"));
        assert_eq!(
            by_file.pruned_compact_path(&dir),
            Some(dir.join("compact.hsck"))
        );
        assert!(!dir.join(format!("{MANIFEST_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_compact_is_optional_on_version_1() {
        // A manifest written before the compact stage existed parses
        // with `pruned_compact: None`, and a compact-less manifest
        // renders without the key at all.
        let mut m = sample();
        m.pruned_compact = None;
        let text = m.to_json().render();
        assert!(!text.contains("pruned_compact"));
        let parsed = ServeManifest::from_json(&schema::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.pruned_compact_path(Path::new("run")), None);
    }

    #[test]
    fn cost_scale_prefers_measured_flops() {
        let mut m = sample();
        assert!((m.pruned_cost_scale() - 0.25).abs() < 1e-9);
        m.pruned_flops = 0; // falls back to 1/sp
        assert!((m.pruned_cost_scale() - 0.5).abs() < 1e-9);
        m.sp = 1.0;
        assert!((m.pruned_cost_scale() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_manifests_are_rejected_with_context() {
        let manifest = sample();
        let rendered = manifest.to_json().render();
        for (needle, replacement) in [
            ("\"version\": 1", "\"version\": 9"),
            ("\"cifar\"", "\"imagenet\""),
            ("\"dense\": \"pretrained.hsck\"", "\"dense\": 17"),
        ] {
            let broken = rendered.replace(needle, replacement);
            assert_ne!(broken, rendered, "needle `{needle}` not found");
            let parsed = schema::parse(&broken).unwrap();
            assert!(
                ServeManifest::from_json(&parsed).is_err(),
                "accepted {replacement}"
            );
        }
        assert!(ServeManifest::load(Path::new("/nonexistent-hs-manifest")).is_err());
    }
}
