//! `hs-runner` — the config-driven experiment pipeline.
//!
//! Every HeadStart experiment is the same story: build a dataset,
//! pre-train a model (or restore a checkpoint), prune it front to back
//! with some method, fine-tune, evaluate, and write down what happened.
//! This crate owns that story once, so the experiment binaries in
//! `hs-bench` reduce to *which* models, methods and seeds to feed it.
//!
//! Runs are **crash-safe** when given a run directory (`--run-dir`):
//! every artifact write is atomic, each pruned unit is checkpointed and
//! journaled (see [`journal`]), and an interrupted run continues from
//! its last completed unit with `hs_run --resume DIR` — bit-identical
//! to the uninterrupted run. The [`faults`] module drives the
//! deterministic fault-injection harness (`HS_FAULT`) the crash/resume
//! tests are built on.
//!
//! ```no_run
//! use hs_runner::{run, RunnerConfig};
//!
//! let mut cfg = RunnerConfig::new("demo");
//! cfg.budget = hs_runner::Budget::smoke();
//! let report = run(&cfg).expect("pipeline");
//! println!("{} -> {}", report.original_accuracy, report.final_accuracy);
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod config;
pub mod error;
pub mod faults;
pub mod journal;
pub mod manifest;
pub mod pipeline;
pub mod report;
pub mod resume;

pub use budget::Budget;
pub use config::{BaselineKind, DataChoice, Method, ModelChoice, ModelKind, RunnerConfig};
pub use error::RunnerError;
pub use faults::{arm_from_env, crash_point, FAULT_ENV};
pub use journal::{Journal, Stage, UnitRecord, JOURNAL_FILE};
pub use manifest::{ServeManifest, MANIFEST_FILE};
pub use pipeline::{
    prepare, pretrain, run, CompactSummary, MethodRun, PipelineReport, Prepared, SingleLayerRun,
};
pub use report::{pct, write_json, Json, Phase, StageTiming};
pub use resume::{resume_run, COMPACT_CHECKPOINT, FINAL_CHECKPOINT, PRETRAINED_CHECKPOINT};
