//! The run journal: `run.journal.json`, the on-disk record a crash-safe
//! pipeline keeps of everything needed to continue after a kill.
//!
//! The journal is rewritten **atomically** after every completed
//! pipeline stage and after every pruned unit, so at any instant the
//! file on disk describes a consistent prefix of the run:
//!
//! - a **config echo** that round-trips the full [`RunnerConfig`]
//!   (dataset, model, method, seeds, budget), so `hs_run --resume DIR`
//!   needs no other flags;
//! - the **stage** reached (`prepared` after the pre-trained checkpoint
//!   is on disk, `finalized` once the pruned model and final accuracy
//!   are);
//! - one [`UnitRecord`] per pruned unit: the learned inception (kept
//!   map indices), the accuracies and cost after the unit, the per-unit
//!   checkpoint file, and the **complete RNG state** after the unit's
//!   fine-tuning — the four xoshiro256++ words as hex strings (JSON
//!   numbers are doubles and would silently round u64s) plus the
//!   Box–Muller cache, which is what makes a resumed run bit-identical
//!   to an uninterrupted one.
//!
//! Reading uses the workspace's own JSON parser
//! ([`hs_telemetry::schema::parse`]); writing uses the runner's
//! [`Json`] value through the atomic writer, so an armed
//! `io_error:journal` / `io_flaky:journal` fault exercises exactly the
//! production write path.

use std::path::{Path, PathBuf};

use hs_telemetry::schema;
use hs_tensor::RngSnapshot;

use crate::config::{DataChoice, Method, ModelChoice, RunnerConfig};
use crate::error::RunnerError;
use crate::report::Json;

/// File name of the journal inside a run directory.
pub const JOURNAL_FILE: &str = "run.journal.json";

/// Journal format version (bumped on breaking layout changes).
pub const JOURNAL_VERSION: u64 = 1;

/// How far a journaled run has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Dataset built, model pre-trained (or restored) and checkpointed.
    Prepared,
    /// Pruning finished, final checkpoint and accuracy recorded.
    Finalized,
}

impl Stage {
    /// Journal string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Prepared => "prepared",
            Stage::Finalized => "finalized",
        }
    }

    fn parse(s: &str) -> Result<Stage, String> {
        match s {
            "prepared" => Ok(Stage::Prepared),
            "finalized" => Ok(Stage::Finalized),
            other => Err(format!("unknown stage `{other}`")),
        }
    }
}

/// Everything the journal records about one completed pruned unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Position of the unit in pruning order (0-based conv ordinal).
    pub ordinal: usize,
    /// Node index of the pruned convolution.
    pub conv_node: usize,
    /// Feature maps before pruning this unit.
    pub maps_before: usize,
    /// Kept feature-map indices — the learned inception mask.
    pub keep: Vec<usize>,
    /// Test accuracy right after surgery, before fine-tuning.
    pub inception_accuracy: f32,
    /// Test accuracy after this unit's fine-tuning.
    pub finetuned_accuracy: f32,
    /// Total model parameters after this unit.
    pub params_after: u64,
    /// Total model MACs after this unit.
    pub flops_after: u64,
    /// Checkpoint file name (relative to the run directory) holding the
    /// model state after this unit.
    pub checkpoint: String,
    /// Complete prune-RNG state after this unit's fine-tuning.
    pub rng_after: RngSnapshot,
}

/// The journal of one crash-safe pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// The run's full configuration (echoed so resume is flag-free).
    pub config: RunnerConfig,
    /// Stage reached.
    pub stage: Stage,
    /// Test accuracy of the pre-trained model.
    pub original_accuracy: f32,
    /// Completed pruned units, in order.
    pub units: Vec<UnitRecord>,
    /// Final test accuracy, once [`Stage::Finalized`].
    pub final_accuracy: Option<f32>,
}

impl Journal {
    /// A fresh journal for a run that just prepared its model.
    pub fn new(config: RunnerConfig, original_accuracy: f32) -> Journal {
        Journal {
            config,
            stage: Stage::Prepared,
            original_accuracy,
            units: Vec::new(),
            final_accuracy: None,
        }
    }

    /// The journal path inside a run directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(JOURNAL_FILE)
    }

    /// Atomically writes the journal into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (site `journal` for fault
    /// injection).
    pub fn save(&self, dir: &Path) -> Result<(), RunnerError> {
        let bytes = self.to_json().render();
        hs_telemetry::io::atomic_write_as(&Journal::path(dir), "journal", bytes.as_bytes())?;
        Ok(())
    }

    /// Loads and validates the journal from `dir`.
    ///
    /// # Errors
    ///
    /// [`RunnerError::Journal`] when the file is missing, unparsable, or
    /// structurally wrong; the message names the first problem.
    pub fn load(dir: &Path) -> Result<Journal, RunnerError> {
        let path = Journal::path(dir);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| RunnerError::Journal(format!("{}: {e}", path.display())))?;
        let value = schema::parse(&text)
            .map_err(|e| RunnerError::Journal(format!("{}: {e}", path.display())))?;
        Journal::from_json(&value)
            .map_err(|e| RunnerError::Journal(format!("{}: {e}", path.display())))
    }

    /// Rebuilds the [`RunnerConfig`] this journal echoes, rooted at
    /// `dir` (so a moved run directory still resumes).
    pub fn to_config(&self, dir: &Path) -> RunnerConfig {
        let mut cfg = self.config.clone();
        cfg.run_dir = Some(dir.to_path_buf());
        cfg
    }

    /// Renders the journal as a JSON value.
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let opt_path = |p: &Option<PathBuf>| match p {
            Some(p) => Json::str(p.to_string_lossy()),
            None => Json::Null,
        };
        let config = Json::Obj(vec![
            ("label".into(), Json::str(cfg.label.clone())),
            ("data".into(), Json::str(cfg.data.name())),
            ("model".into(), Json::str(cfg.model.name())),
            ("width".into(), Json::num(f64::from(cfg.model.width))),
            ("method".into(), Json::str(cfg.method.cli_name())),
            ("sp".into(), Json::num(f64::from(cfg.method.sp()))),
            ("keep".into(), Json::num(f64::from(cfg.method.keep_ratio()))),
            ("seed".into(), hex(cfg.seed)),
            ("prune_seed".into(), hex(cfg.prune_seed)),
            (
                "pretrain_epochs".into(),
                Json::num(cfg.budget.pretrain_epochs as f64),
            ),
            (
                "finetune_epochs".into(),
                Json::num(cfg.budget.finetune_epochs as f64),
            ),
            (
                "rl_episodes".into(),
                Json::num(cfg.budget.rl_episodes as f64),
            ),
            (
                "rl_eval_images".into(),
                Json::num(cfg.budget.rl_eval_images as f64),
            ),
            ("checkpoint".into(), opt_path(&cfg.checkpoint)),
            ("compact".into(), Json::Bool(cfg.compact)),
            ("workers".into(), Json::num(cfg.workers as f64)),
            ("artifact".into(), opt_path(&cfg.artifact)),
            ("telemetry".into(), opt_path(&cfg.telemetry)),
            ("metrics".into(), opt_path(&cfg.metrics)),
            (
                "log_level".into(),
                match cfg.log_level {
                    Some(level) => Json::str(level.as_str()),
                    None => Json::Null,
                },
            ),
        ]);
        let units = self
            .units
            .iter()
            .map(|u| {
                Json::Obj(vec![
                    ("ordinal".into(), Json::num(u.ordinal as f64)),
                    ("conv_node".into(), Json::num(u.conv_node as f64)),
                    ("maps_before".into(), Json::num(u.maps_before as f64)),
                    (
                        "keep".into(),
                        Json::Arr(u.keep.iter().map(|&k| Json::num(k as f64)).collect()),
                    ),
                    (
                        "inception_accuracy".into(),
                        Json::num(f64::from(u.inception_accuracy)),
                    ),
                    (
                        "finetuned_accuracy".into(),
                        Json::num(f64::from(u.finetuned_accuracy)),
                    ),
                    ("params_after".into(), hex(u.params_after)),
                    ("flops_after".into(), hex(u.flops_after)),
                    ("checkpoint".into(), Json::str(u.checkpoint.clone())),
                    ("rng_after".into(), snapshot_to_json(&u.rng_after)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::num(JOURNAL_VERSION as f64)),
            ("config".into(), config),
            ("stage".into(), Json::str(self.stage.as_str())),
            (
                "original_accuracy".into(),
                Json::num(f64::from(self.original_accuracy)),
            ),
            ("units".into(), Json::Arr(units)),
            (
                "final_accuracy".into(),
                match self.final_accuracy {
                    Some(a) => Json::num(f64::from(a)),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a journal from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(value: &schema::Json) -> Result<Journal, String> {
        let obj = value.as_obj().ok_or("journal is not a JSON object")?;
        let version = num(obj, "version")? as u64;
        if version != JOURNAL_VERSION {
            return Err(format!("unsupported journal version {version}"));
        }
        let cfg_obj = obj
            .get("config")
            .and_then(schema::Json::as_obj)
            .ok_or("missing `config` object")?;

        let mut cfg = RunnerConfig::new(str_field(cfg_obj, "label")?);
        cfg.data = DataChoice::parse(&str_field(cfg_obj, "data")?).map_err(|e| e.to_string())?;
        cfg.model =
            ModelChoice::parse(&str_field(cfg_obj, "model")?, num(cfg_obj, "width")? as f32)
                .map_err(|e| e.to_string())?;
        cfg.method = Method::parse(
            &str_field(cfg_obj, "method")?,
            num(cfg_obj, "sp")? as f32,
            num(cfg_obj, "keep")? as f32,
        )
        .map_err(|e| e.to_string())?;
        cfg.seed = hex_field(cfg_obj, "seed")?;
        cfg.prune_seed = hex_field(cfg_obj, "prune_seed")?;
        cfg.budget.pretrain_epochs = num(cfg_obj, "pretrain_epochs")? as usize;
        cfg.budget.finetune_epochs = num(cfg_obj, "finetune_epochs")? as usize;
        cfg.budget.rl_episodes = num(cfg_obj, "rl_episodes")? as usize;
        cfg.budget.rl_eval_images = num(cfg_obj, "rl_eval_images")? as usize;
        cfg.checkpoint = opt_path_field(cfg_obj, "checkpoint")?;
        // Absent in journals written before the compact stage existed.
        cfg.compact = match cfg_obj.get("compact") {
            None | Some(schema::Json::Null) => false,
            Some(schema::Json::Bool(b)) => *b,
            Some(_) => return Err("`compact` is not a boolean".to_string()),
        };
        // Absent in journals written before sharded evaluation existed.
        cfg.workers = match cfg_obj.get("workers") {
            None | Some(schema::Json::Null) => 1,
            Some(schema::Json::Num(n)) if *n >= 1.0 => *n as usize,
            Some(_) => return Err("`workers` is not a positive number".to_string()),
        };
        cfg.artifact = opt_path_field(cfg_obj, "artifact")?;
        cfg.telemetry = opt_path_field(cfg_obj, "telemetry")?;
        cfg.metrics = opt_path_field(cfg_obj, "metrics")?;
        cfg.log_level = match cfg_obj.get("log_level") {
            None | Some(schema::Json::Null) => None,
            Some(v) => {
                let name = v.as_str().ok_or("`log_level` is not a string")?;
                Some(
                    hs_telemetry::Level::parse(name)
                        .ok_or_else(|| format!("unknown log level `{name}`"))?,
                )
            }
        };

        let stage = Stage::parse(&str_field(obj, "stage")?)?;
        let original_accuracy = num(obj, "original_accuracy")? as f32;
        let final_accuracy = match obj.get("final_accuracy") {
            None | Some(schema::Json::Null) => None,
            Some(v) => Some(v.as_num().ok_or("`final_accuracy` is not a number")? as f32),
        };

        let units_arr = match obj.get("units") {
            Some(schema::Json::Arr(items)) => items,
            _ => return Err("missing `units` array".to_string()),
        };
        let mut units = Vec::with_capacity(units_arr.len());
        for (i, item) in units_arr.iter().enumerate() {
            let u = item
                .as_obj()
                .ok_or_else(|| format!("unit {i} is not an object"))?;
            let keep = match u.get("keep") {
                Some(schema::Json::Arr(items)) => items
                    .iter()
                    .map(|k| {
                        k.as_num()
                            .map(|n| n as usize)
                            .ok_or_else(|| format!("unit {i}: non-numeric keep entry"))
                    })
                    .collect::<Result<Vec<usize>, String>>()?,
                _ => return Err(format!("unit {i}: missing `keep` array")),
            };
            let record = UnitRecord {
                ordinal: num(u, "ordinal")? as usize,
                conv_node: num(u, "conv_node")? as usize,
                maps_before: num(u, "maps_before")? as usize,
                keep,
                inception_accuracy: num(u, "inception_accuracy")? as f32,
                finetuned_accuracy: num(u, "finetuned_accuracy")? as f32,
                params_after: hex_field(u, "params_after")?,
                flops_after: hex_field(u, "flops_after")?,
                checkpoint: str_field(u, "checkpoint")?,
                rng_after: snapshot_from_json(
                    u.get("rng_after")
                        .ok_or_else(|| format!("unit {i}: missing `rng_after`"))?,
                )
                .map_err(|e| format!("unit {i}: {e}"))?,
            };
            if record.ordinal != i {
                return Err(format!(
                    "unit {i} records ordinal {} — journal is out of order",
                    record.ordinal
                ));
            }
            units.push(record);
        }

        Ok(Journal {
            config: cfg,
            stage,
            original_accuracy,
            units,
            final_accuracy,
        })
    }
}

/// A u64 as a JSON hex string — JSON numbers are IEEE doubles and would
/// silently round values above 2⁵³ (RNG state words use the full range).
fn hex(v: u64) -> Json {
    Json::str(format!("{v:#x}"))
}

fn parse_hex(s: &str) -> Result<u64, String> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("`{s}` is not a 0x-prefixed hex string"))?;
    u64::from_str_radix(digits, 16).map_err(|_| format!("`{s}` is not a valid hex u64"))
}

fn snapshot_to_json(s: &RngSnapshot) -> Json {
    Json::Obj(vec![
        (
            "state".into(),
            Json::Arr(s.state.iter().map(|&w| hex(w)).collect()),
        ),
        (
            "gauss".into(),
            match s.gauss_cache {
                Some(g) => Json::num(f64::from(g)),
                None => Json::Null,
            },
        ),
    ])
}

fn snapshot_from_json(value: &schema::Json) -> Result<RngSnapshot, String> {
    let obj = value.as_obj().ok_or("`rng_after` is not an object")?;
    let words = match obj.get("state") {
        Some(schema::Json::Arr(items)) if items.len() == 4 => items,
        _ => return Err("`state` is not a 4-element array".to_string()),
    };
    let mut state = [0u64; 4];
    for (slot, w) in state.iter_mut().zip(words) {
        let s = w.as_str().ok_or("`state` word is not a string")?;
        *slot = parse_hex(s)?;
    }
    let gauss_cache = match obj.get("gauss") {
        None | Some(schema::Json::Null) => None,
        Some(v) => Some(v.as_num().ok_or("`gauss` is not a number")? as f32),
    };
    Ok(RngSnapshot { state, gauss_cache })
}

fn num(obj: &std::collections::BTreeMap<String, schema::Json>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(schema::Json::as_num)
        .ok_or_else(|| format!("missing numeric `{key}`"))
}

fn str_field(
    obj: &std::collections::BTreeMap<String, schema::Json>,
    key: &str,
) -> Result<String, String> {
    obj.get(key)
        .and_then(schema::Json::as_str)
        .map(String::from)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn hex_field(
    obj: &std::collections::BTreeMap<String, schema::Json>,
    key: &str,
) -> Result<u64, String> {
    let s = str_field(obj, key)?;
    parse_hex(&s).map_err(|e| format!("`{key}`: {e}"))
}

fn opt_path_field(
    obj: &std::collections::BTreeMap<String, schema::Json>,
    key: &str,
) -> Result<Option<PathBuf>, String> {
    match obj.get(key) {
        None | Some(schema::Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(PathBuf::from(s)))
            .ok_or_else(|| format!("`{key}` is not a string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use hs_tensor::Rng;

    fn sample_journal() -> Journal {
        let mut cfg = RunnerConfig::new("journal-test");
        cfg.budget = Budget::smoke();
        cfg.seed = u64::MAX - 3; // exercises the full u64 range
        cfg.prune_seed = 7;
        cfg.checkpoint = Some(PathBuf::from("run/pretrained.hsck"));
        cfg.compact = true; // exercises the boolean config echo
        cfg.workers = 6; // exercises the numeric config echo
        let mut rng = Rng::seed_from(123);
        let _ = rng.normal(); // odd draw count leaves a gauss cache behind
        let mut journal = Journal::new(cfg, 0.25);
        journal.units.push(UnitRecord {
            ordinal: 0,
            conv_node: 2,
            maps_before: 8,
            keep: vec![0, 3, 5, 7],
            inception_accuracy: 0.125,
            finetuned_accuracy: 0.375,
            params_after: (1 << 60) + 17, // would round as a JSON double
            flops_after: 99,
            checkpoint: "unit-00.hsck".to_string(),
            rng_after: rng.snapshot(),
        });
        journal
    }

    #[test]
    fn journal_round_trips_bit_exactly() {
        let journal = sample_journal();
        let text = journal.to_json().render();
        let parsed = Journal::from_json(&schema::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, journal);
        // The RNG continues identically from the round-tripped snapshot.
        let mut a = Rng::from_snapshot(journal.units[0].rng_after);
        let mut b = Rng::from_snapshot(parsed.units[0].rng_after);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert!(a.normal() == b.normal());
        }
    }

    #[test]
    fn journal_saves_and_loads_from_a_run_dir() {
        let dir = std::env::temp_dir().join(format!("hs-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut journal = sample_journal();
        journal.save(&dir).unwrap();
        assert_eq!(Journal::load(&dir).unwrap(), journal);
        // Saves replace atomically: no .tmp litter, updates visible.
        journal.stage = Stage::Finalized;
        journal.final_accuracy = Some(0.5);
        journal.save(&dir).unwrap();
        assert_eq!(Journal::load(&dir).unwrap().stage, Stage::Finalized);
        assert!(!dir.join(format!("{JOURNAL_FILE}.tmp")).exists());
        let cfg = Journal::load(&dir).unwrap().to_config(&dir);
        assert_eq!(cfg.run_dir.as_deref(), Some(dir.as_path()));
        assert_eq!(cfg.seed, u64::MAX - 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journals_without_workers_default_to_one() {
        // Journals written before sharded evaluation existed have no
        // `workers` key; they must still load (as a serial run).
        let rendered = sample_journal().to_json().render();
        let legacy = rendered.replace("\"workers\": 6,", "");
        assert_ne!(legacy, rendered);
        let parsed = Journal::from_json(&schema::parse(&legacy).unwrap()).unwrap();
        assert_eq!(parsed.config.workers, 1);

        let broken = rendered.replace("\"workers\": 6", "\"workers\": \"many\"");
        assert!(Journal::from_json(&schema::parse(&broken).unwrap()).is_err());
    }

    #[test]
    fn malformed_journals_are_rejected_with_context() {
        let missing = Journal::load(Path::new("/nonexistent-hs-run"));
        assert!(matches!(missing, Err(RunnerError::Journal(_))));

        let journal = sample_journal();
        let rendered = journal.to_json().render();
        for (needle, replacement) in [
            ("\"version\": 1", "\"version\": 9"),
            ("\"prepared\"", "\"warp-speed\""),
            ("\"0x7\"", "\"7g\""), // prune_seed loses its hex prefix
        ] {
            let broken = rendered.replace(needle, replacement);
            assert_ne!(broken, rendered, "needle `{needle}` not found");
            let parsed = schema::parse(&broken).unwrap();
            assert!(
                Journal::from_json(&parsed).is_err(),
                "accepted {replacement}"
            );
        }
    }
}
