//! CLI contract of `telemetry_lint`: unknown kinds are hard failures,
//! the serving kinds are recognised, and `--require-order` enforces the
//! degrade→restore sequence CI depends on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn lint(lines: &str, tag: &str, extra: &[&str]) -> Output {
    let path = std::env::temp_dir().join(format!("hs-lint-{}-{tag}.jsonl", std::process::id()));
    std::fs::write(&path, lines).expect("write stream");
    let out = Command::new(env!("CARGO_BIN_EXE_telemetry_lint"))
        .arg(&path)
        .args(extra)
        .output()
        .expect("run telemetry_lint");
    std::fs::remove_file(&path).ok();
    out
}

/// One schema-valid JSONL event line; `fields` is the inner body of
/// the `fields` object.
fn line(kind: &str, fields: &str) -> String {
    format!(
        "{{\"schema\": 1, \"kind\": \"{kind}\", \"level\": \"info\", \"name\": \"t\", \
         \"message\": \"m\", \"fields\": {{{fields}}}, \"ts\": 1.5}}\n"
    )
}

#[test]
fn unknown_event_kind_exits_non_zero() {
    let out = lint(&line("mystery_kind", ""), "unknown", &[]);
    assert!(!out.status.success(), "unknown kind must fail the lint");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mystery_kind"), "stderr names the kind: {err}");
}

#[test]
fn serve_kinds_are_recognised() {
    let stream = [
        line("serve_request", "\"id\": 1, \"outcome\": \"accepted\""),
        line(
            "serve_batch",
            "\"size\": 2, \"model\": \"dense\", \"outcome\": \"ok\"",
        ),
        line("serve_breaker", "\"from\": \"closed\", \"to\": \"open\""),
        line(
            "degrade",
            "\"reason\": \"breaker_open\", \"model\": \"pruned\"",
        ),
        line("restore", "\"reason\": \"recovered\", \"model\": \"dense\""),
    ]
    .concat();
    let out = lint(
        &stream,
        "serve-kinds",
        &["--require-kind", "degrade", "--require-kind", "restore"],
    );
    assert!(
        out.status.success(),
        "serve kinds rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn require_order_enforces_degrade_before_restore() {
    let degrade = line(
        "degrade",
        "\"reason\": \"breaker_open\", \"model\": \"pruned\"",
    );
    let restore = line("restore", "\"reason\": \"recovered\", \"model\": \"dense\"");
    let order = ["--require-order", "degrade,restore"];

    let ok = lint(&format!("{degrade}{restore}"), "order-ok", &order);
    assert!(
        ok.status.success(),
        "in-order stream rejected: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    let flipped = lint(&format!("{restore}{degrade}"), "order-flipped", &order);
    assert!(!flipped.status.success(), "out-of-order stream must fail");
    let err = String::from_utf8_lossy(&flipped.stderr);
    assert!(
        err.contains(":1: first `restore` precedes first `degrade` (line 2)"),
        "diagnostic anchors the early event's line: {err}"
    );

    let missing = lint(&degrade, "order-missing", &order);
    assert!(!missing.status.success(), "missing `restore` must fail");
    let err = String::from_utf8_lossy(&missing.stderr);
    assert!(err.contains("restore"), "stderr names the gap: {err}");
}

#[test]
fn lint_binary_path_exists() {
    assert!(PathBuf::from(env!("CARGO_BIN_EXE_telemetry_lint")).exists());
}
