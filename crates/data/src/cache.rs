//! Process-wide dataset cache.
//!
//! The experiment binaries (one per paper table/figure) frequently want
//! the *same* dataset; regeneration is deterministic but not free, so a
//! process-wide cache keyed by the spec avoids repeated synthesis.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::error::DataError;
use crate::generator::Dataset;
use crate::spec::DatasetSpec;

type Key = String;

static CACHE: Mutex<Option<HashMap<Key, Arc<Dataset>>>> = Mutex::new(None);

fn key_of(spec: &DatasetSpec) -> Key {
    // The spec is small and fully public; a debug-format key is exact.
    format!("{spec:?}")
}

/// Locks the cache, recovering from poisoning: a panic elsewhere while
/// the lock was held (e.g. in a caller's thread during generation)
/// drops the possibly half-updated map and lets every later request
/// rebuild entries, instead of panicking forever on `.expect()`.
fn lock_cache() -> std::sync::MutexGuard<'static, Option<HashMap<Key, Arc<Dataset>>>> {
    match CACHE.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            *guard = None;
            CACHE.clear_poison();
            guard
        }
    }
}

/// Returns the dataset for `spec`, generating it on first request and
/// serving a shared handle afterwards.
///
/// # Errors
///
/// Returns [`DataError::BadSpec`] if the spec fails validation.
///
/// # Example
///
/// ```
/// use hs_data::{cached, DatasetSpec};
///
/// # fn main() -> Result<(), hs_data::DataError> {
/// let spec = DatasetSpec::cifar_like().classes(2).train_per_class(2).test_per_class(1).image_size(8);
/// let a = cached(&spec)?;
/// let b = cached(&spec)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// # Ok(())
/// # }
/// ```
pub fn cached(spec: &DatasetSpec) -> Result<Arc<Dataset>, DataError> {
    let key = key_of(spec);
    {
        let guard = lock_cache();
        if let Some(map) = guard.as_ref() {
            if let Some(ds) = map.get(&key) {
                return Ok(Arc::clone(ds));
            }
        }
    }
    // Generate outside the lock: synthesis can take a while and other
    // threads may want other specs meanwhile.
    let ds = Arc::new(Dataset::generate(spec)?);
    let mut guard = lock_cache();
    let map = guard.get_or_insert_with(HashMap::new);
    Ok(Arc::clone(map.entry(key).or_insert(ds)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global cache, so the
    /// poisoning test's rebuild never races a ptr_eq assertion.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn cache_returns_same_arc() {
        let _guard = test_lock();
        let spec = DatasetSpec::cifar_like()
            .classes(2)
            .train_per_class(2)
            .test_per_class(1)
            .image_size(8)
            .with_seed(12345);
        let a = cached(&spec).unwrap();
        let b = cached(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_specs_get_different_datasets() {
        let _guard = test_lock();
        let s1 = DatasetSpec::cifar_like()
            .classes(2)
            .train_per_class(2)
            .test_per_class(1)
            .image_size(8)
            .with_seed(777);
        let s2 = s1.clone().with_seed(778);
        let a = cached(&s1).unwrap();
        let b = cached(&s2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.train_images, b.train_images);
    }

    #[test]
    fn cache_propagates_validation_errors() {
        assert!(cached(&DatasetSpec::cifar_like().classes(0)).is_err());
    }

    #[test]
    fn cache_recovers_from_a_poisoned_lock() {
        let _guard = test_lock();
        // Poison the cache mutex: a thread panics while holding it.
        let _ = std::thread::spawn(|| {
            let _guard = CACHE.lock().unwrap_or_else(|p| p.into_inner());
            panic!("poison the dataset cache");
        })
        .join();

        // Every later request must still be served (the entry is
        // rebuilt), not panic on "dataset cache lock poisoned".
        let spec = DatasetSpec::cifar_like()
            .classes(2)
            .train_per_class(2)
            .test_per_class(1)
            .image_size(8)
            .with_seed(424242);
        let a = cached(&spec).expect("cache must recover after poisoning");
        let b = cached(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "rebuilt entry must be cached again");
    }
}
