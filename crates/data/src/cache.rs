//! Process-wide dataset cache.
//!
//! The experiment binaries (one per paper table/figure) frequently want
//! the *same* dataset; regeneration is deterministic but not free, so a
//! process-wide cache keyed by the spec avoids repeated synthesis.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::error::DataError;
use crate::generator::Dataset;
use crate::spec::DatasetSpec;

type Key = String;

static CACHE: Mutex<Option<HashMap<Key, Arc<Dataset>>>> = Mutex::new(None);

fn key_of(spec: &DatasetSpec) -> Key {
    // The spec is small and fully public; a debug-format key is exact.
    format!("{spec:?}")
}

/// Returns the dataset for `spec`, generating it on first request and
/// serving a shared handle afterwards.
///
/// # Errors
///
/// Returns [`DataError::BadSpec`] if the spec fails validation.
///
/// # Example
///
/// ```
/// use hs_data::{cached, DatasetSpec};
///
/// # fn main() -> Result<(), hs_data::DataError> {
/// let spec = DatasetSpec::cifar_like().classes(2).train_per_class(2).test_per_class(1).image_size(8);
/// let a = cached(&spec)?;
/// let b = cached(&spec)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// # Ok(())
/// # }
/// ```
pub fn cached(spec: &DatasetSpec) -> Result<Arc<Dataset>, DataError> {
    let key = key_of(spec);
    {
        let guard = CACHE.lock().expect("dataset cache lock poisoned");
        if let Some(map) = guard.as_ref() {
            if let Some(ds) = map.get(&key) {
                return Ok(Arc::clone(ds));
            }
        }
    }
    // Generate outside the lock: synthesis can take a while and other
    // threads may want other specs meanwhile.
    let ds = Arc::new(Dataset::generate(spec)?);
    let mut guard = CACHE.lock().expect("dataset cache lock poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    Ok(Arc::clone(map.entry(key).or_insert(ds)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_same_arc() {
        let spec = DatasetSpec::cifar_like()
            .classes(2)
            .train_per_class(2)
            .test_per_class(1)
            .image_size(8)
            .with_seed(12345);
        let a = cached(&spec).unwrap();
        let b = cached(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_specs_get_different_datasets() {
        let s1 = DatasetSpec::cifar_like()
            .classes(2)
            .train_per_class(2)
            .test_per_class(1)
            .image_size(8)
            .with_seed(777);
        let s2 = s1.clone().with_seed(778);
        let a = cached(&s1).unwrap();
        let b = cached(&s2).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.train_images, b.train_images);
    }

    #[test]
    fn cache_propagates_validation_errors() {
        assert!(cached(&DatasetSpec::cifar_like().classes(0)).is_err());
    }
}
