//! Procedural image synthesis.

use hs_tensor::{Rng, Shape, Tensor};

use crate::error::DataError;
use crate::spec::{DatasetKind, DatasetSpec};

/// A generated dataset: train/test splits of `[N, C, S, S]` images with
/// integer labels, already normalized to approximately zero mean and unit
/// variance.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Training images, `[N_train, C, S, S]`.
    pub train_images: Tensor,
    /// Training labels (one class index per image).
    pub train_labels: Vec<usize>,
    /// Test images, `[N_test, C, S, S]`.
    pub test_images: Tensor,
    /// Test labels.
    pub test_labels: Vec<usize>,
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
}

/// One spatial frequency component of a texture prototype.
#[derive(Debug, Clone, Copy)]
struct Component {
    fx: f32,
    fy: f32,
    phase: f32,
    /// Amplitude per channel.
    amp: [f32; 4],
}

/// A class prototype: frequency components plus a per-channel color bias.
#[derive(Debug, Clone)]
struct Prototype {
    components: Vec<Component>,
    color_bias: Vec<f32>,
}

fn random_component(rng: &mut Rng, channels: usize, max_freq: f32, amp_scale: f32) -> Component {
    let mut amp = [0.0f32; 4];
    for a in amp.iter_mut().take(channels.min(4)) {
        *a = rng.normal_with(0.0, amp_scale);
    }
    Component {
        fx: rng.uniform_in(0.5, max_freq),
        fy: rng.uniform_in(0.5, max_freq),
        phase: rng.uniform_in(0.0, std::f32::consts::TAU),
        amp,
    }
}

fn genus_prototype(rng: &mut Rng, channels: usize) -> Prototype {
    let components = (0..4)
        .map(|_| random_component(rng, channels, 4.0, 1.0))
        .collect();
    let color_bias = (0..channels).map(|_| rng.normal_with(0.0, 0.5)).collect();
    Prototype {
        components,
        color_bias,
    }
}

/// Builds the class prototypes. For fine-grained datasets each class
/// starts from its genus prototype and adds a *small* class-specific
/// component, so classes within a genus are hard to tell apart.
fn class_prototypes(spec: &DatasetSpec, rng: &mut Rng) -> Vec<Prototype> {
    match spec.kind {
        DatasetKind::CifarLike => (0..spec.num_classes)
            .map(|_| {
                let mut p = genus_prototype(rng, spec.channels);
                // Coarse datasets: one extra strong component per class.
                p.components
                    .push(random_component(rng, spec.channels, 6.0, 1.0));
                p
            })
            .collect(),
        DatasetKind::CubLike => {
            let genera: Vec<Prototype> = (0..spec.num_genera)
                .map(|_| genus_prototype(rng, spec.channels))
                .collect();
            (0..spec.num_classes)
                .map(|c| {
                    let mut p = genera[c % spec.num_genera].clone();
                    // The class-discriminative signal is deliberately
                    // subtle: one weak high-frequency component and a tiny
                    // color shift.
                    p.components
                        .push(random_component(rng, spec.channels, 8.0, 0.6));
                    for b in &mut p.color_bias {
                        *b += rng.normal_with(0.0, 0.15);
                    }
                    p
                })
                .collect()
        }
    }
}

/// Renders one sample of a prototype into `out` (length `C·S·S`).
fn render_sample(proto: &Prototype, spec: &DatasetSpec, rng: &mut Rng, out: &mut [f32]) {
    let s = spec.size;
    let inv = 1.0 / s as f32;
    // Instance-level jitter: global phase shift and per-component
    // amplitude scaling — the same texture seen under different "pose".
    let phase_jitter = rng.normal_with(0.0, spec.jitter);
    let scales: Vec<f32> = proto
        .components
        .iter()
        .map(|_| rng.uniform_in(0.7, 1.3))
        .collect();
    // Structured clutter: sample-specific components carrying no class
    // information. Unlike pixel noise, a convnet cannot average these
    // away, so they bound the attainable accuracy realistically.
    let clutter: Vec<Component> = (0..spec.distractors)
        .map(|_| random_component(rng, spec.channels, 6.0, spec.distractor_amp))
        .collect();
    for ch in 0..spec.channels {
        let bias = proto.color_bias[ch];
        let plane = &mut out[ch * s * s..(ch + 1) * s * s];
        for y in 0..s {
            for x in 0..s {
                let mut v = bias;
                for (comp, &scale) in proto.components.iter().zip(&scales) {
                    let arg = std::f32::consts::TAU
                        * (comp.fx * x as f32 * inv + comp.fy * y as f32 * inv)
                        + comp.phase
                        + phase_jitter;
                    v += scale * comp.amp[ch.min(3)] * arg.sin();
                }
                for comp in &clutter {
                    let arg = std::f32::consts::TAU
                        * (comp.fx * x as f32 * inv + comp.fy * y as f32 * inv)
                        + comp.phase;
                    v += comp.amp[ch.min(3)] * arg.sin();
                }
                plane[y * s + x] = v;
            }
        }
    }
    for v in out.iter_mut() {
        *v += rng.normal_with(0.0, spec.noise);
    }
}

fn render_split(
    protos: &[Prototype],
    spec: &DatasetSpec,
    per_class: usize,
    rng: &mut Rng,
) -> Result<(Tensor, Vec<usize>), DataError> {
    let n = protos.len() * per_class;
    let sample_len = spec.channels * spec.size * spec.size;
    let mut data = vec![0.0f32; n * sample_len];
    let mut labels = Vec::with_capacity(n);
    let mut i = 0usize;
    // Interleave classes so any prefix of the dataset is roughly balanced.
    for _rep in 0..per_class {
        for (class, proto) in protos.iter().enumerate() {
            render_sample(
                proto,
                spec,
                rng,
                &mut data[i * sample_len..(i + 1) * sample_len],
            );
            labels.push(class);
            i += 1;
        }
    }
    let images = Tensor::from_vec(Shape::d4(n, spec.channels, spec.size, spec.size), data)?;
    Ok((images, labels))
}

/// Normalizes images in place to zero mean / unit std using *train*
/// statistics, and returns `(mean, std)`.
fn normalize(train: &mut Tensor, test: &mut Tensor) -> (f32, f32) {
    let mean = train.mean();
    let var = train
        .data()
        .iter()
        .map(|&x| ((x - mean) as f64).powi(2))
        .sum::<f64>()
        / train.len() as f64;
    let std = (var.sqrt() as f32).max(1e-6);
    let f = move |x: f32| (x - mean) / std;
    train.map_inplace(f);
    test.map_inplace(f);
    (mean, std)
}

impl Dataset {
    /// Generates a dataset from a spec. Deterministic per seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] if the spec fails validation.
    pub fn generate(spec: &DatasetSpec) -> Result<Dataset, DataError> {
        spec.validate()?;
        let mut rng = Rng::seed_from(spec.seed);
        let mut proto_rng = rng.split();
        let mut train_rng = rng.split();
        let mut test_rng = rng.split();
        let protos = class_prototypes(spec, &mut proto_rng);
        let (mut train_images, train_labels) =
            render_split(&protos, spec, spec.num_train_per_class, &mut train_rng)?;
        let (mut test_images, test_labels) =
            render_split(&protos, spec, spec.num_test_per_class, &mut test_rng)?;
        normalize(&mut train_images, &mut test_images);
        Ok(Dataset {
            train_images,
            train_labels,
            test_images,
            test_labels,
            spec: spec.clone(),
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    /// Image channels.
    pub fn channels(&self) -> usize {
        self.spec.channels
    }

    /// Square image extent.
    pub fn image_size(&self) -> usize {
        self.spec.size
    }

    /// A smaller dataset containing only the first `n_train` training and
    /// `n_test` test samples (class-balanced thanks to interleaving).
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `n_train`/`n_test` exceed the dataset.
    pub fn truncated(&self, n_train: usize, n_test: usize) -> Result<Dataset, DataError> {
        let tr: Vec<usize> = (0..n_train).collect();
        let te: Vec<usize> = (0..n_test).collect();
        Ok(Dataset {
            train_images: self.train_images.index_select(0, &tr)?,
            train_labels: self.train_labels[..n_train].to_vec(),
            test_images: self.test_images.index_select(0, &te)?,
            test_labels: self.test_labels[..n_test].to_vec(),
            spec: self.spec.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec::cifar_like()
            .classes(4)
            .train_per_class(6)
            .test_per_class(3)
            .image_size(8)
    }

    #[test]
    fn shapes_and_label_counts() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        assert_eq!(ds.train_images.shape().dims(), &[24, 3, 8, 8]);
        assert_eq!(ds.test_images.shape().dims(), &[12, 3, 8, 8]);
        assert_eq!(ds.train_labels.len(), 24);
        assert_eq!(ds.test_labels.len(), 12);
    }

    #[test]
    fn labels_are_balanced_and_interleaved() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        for class in 0..4 {
            assert_eq!(ds.train_labels.iter().filter(|&&l| l == class).count(), 6);
            assert_eq!(ds.test_labels.iter().filter(|&&l| l == class).count(), 3);
        }
        // Interleaving: the first num_classes samples cover all classes.
        let first: Vec<usize> = ds.train_labels[..4].to_vec();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::generate(&small_spec()).unwrap();
        let b = Dataset::generate(&small_spec()).unwrap();
        assert_eq!(a.train_images, b.train_images);
        let c = Dataset::generate(&small_spec().with_seed(1)).unwrap();
        assert_ne!(a.train_images, c.train_images);
    }

    #[test]
    fn normalized_statistics() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        let mean = ds.train_images.mean();
        let var = ds.train_images.sq_norm() / ds.train_images.len() as f32 - mean * mean;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn cub_like_is_fine_grained_within_genera() {
        // The defining property of the CUB substitute: classes sharing a
        // genus are much closer to each other (mean-image distance) than
        // classes from different genera.
        let cub = Dataset::generate(
            &DatasetSpec::cub_like()
                .classes(8)
                .genera(4)
                .train_per_class(8)
                .test_per_class(2)
                .image_size(12),
        )
        .unwrap();
        let classes = cub.num_classes();
        let len = cub.train_images.len() / cub.train_labels.len();
        let mut means = vec![vec![0.0f32; len]; classes];
        let mut counts = vec![0usize; classes];
        for (i, &l) in cub.train_labels.iter().enumerate() {
            let img = cub.train_images.index_axis0(i);
            for (m, &v) in means[l].iter_mut().zip(img.data()) {
                *m += v;
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let dist = |a: usize, b: usize| -> f32 {
            means[a]
                .iter()
                .zip(&means[b])
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f32>()
                / len as f32
        };
        // Classes c and c + genera share a genus (c % genera layout).
        let genera = cub.spec.num_genera;
        let mut within = 0.0f32;
        let mut within_n = 0usize;
        let mut across = 0.0f32;
        let mut across_n = 0usize;
        for a in 0..classes {
            for b in a + 1..classes {
                if a % genera == b % genera {
                    within += dist(a, b);
                    within_n += 1;
                } else {
                    across += dist(a, b);
                    across_n += 1;
                }
            }
        }
        let within = within / within_n.max(1) as f32;
        let across = across / across_n.max(1) as f32;
        assert!(
            within < 0.7 * across,
            "within-genus spread {within} should be well below cross-genus {across}"
        );
    }

    #[test]
    fn truncated_keeps_prefix() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        let t = ds.truncated(8, 4).unwrap();
        assert_eq!(t.train_labels.len(), 8);
        assert_eq!(t.train_images.shape().dim(0), 8);
        assert_eq!(t.train_labels, ds.train_labels[..8].to_vec());
    }

    #[test]
    fn generate_rejects_bad_spec() {
        assert!(Dataset::generate(&small_spec().classes(0)).is_err());
    }

    #[test]
    fn images_are_finite() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        assert!(ds.train_images.all_finite());
        assert!(ds.test_images.all_finite());
    }
}
