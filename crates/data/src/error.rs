//! Error type for dataset generation.

use std::error::Error;
use std::fmt;

use hs_tensor::TensorError;

/// Error returned by dataset generation and loading.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A specification field is out of its valid range.
    BadSpec {
        /// Which field was invalid.
        field: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::BadSpec { field, detail } => {
                write!(f, "bad dataset spec ({field}): {detail}")
            }
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::BadSpec {
            field: "classes",
            detail: "must be > 0".into(),
        };
        assert!(e.to_string().contains("classes"));
        let t = DataError::from(TensorError::Empty { op: "stack" });
        assert!(Error::source(&t).is_some());
    }
}
