//! Dataset specifications.

use crate::error::DataError;

/// Which statistical family a synthetic dataset imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// CIFAR-100-like: coarse classes, low inter-class similarity,
    /// small images.
    CifarLike,
    /// CUB-200-like: fine-grained classes clustered into genera, higher
    /// resolution, high inter-class similarity.
    CubLike,
}

/// Specification of a synthetic dataset; construct with
/// [`DatasetSpec::cifar_like`] / [`DatasetSpec::cub_like`] and refine with
/// the builder methods.
///
/// Defaults are scaled so that the complete experiment suite trains on a
/// laptop CPU; raise `classes`, `train_per_class` and `image_size` to
/// approach the real datasets' scale.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset family.
    pub kind: DatasetKind,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples per class.
    pub num_train_per_class: usize,
    /// Test samples per class.
    pub num_test_per_class: usize,
    /// Square image extent in pixels.
    pub size: usize,
    /// Image channels (3 = RGB).
    pub channels: usize,
    /// Number of genera for fine-grained datasets (ignored for
    /// [`DatasetKind::CifarLike`]).
    pub num_genera: usize,
    /// Pixel noise standard deviation.
    pub noise: f32,
    /// Number of per-sample *distractor* texture components: structured
    /// clutter that is independent of the class, which (unlike pixel
    /// noise) cannot be averaged away and therefore caps attainable
    /// accuracy below 100%.
    pub distractors: usize,
    /// Amplitude of the distractor components.
    pub distractor_amp: f32,
    /// Standard deviation of the per-sample phase jitter ("pose"
    /// variation of the class texture).
    pub jitter: f32,
    /// Root RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// CIFAR-100 substitute defaults, calibrated so a quarter-width VGG
    /// plateaus at ≈70–75% test accuracy (the paper's CIFAR-100 regime):
    /// 16 classes, 16×16, 12 train + 12 test per class, heavy structured
    /// clutter.
    pub fn cifar_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::CifarLike,
            num_classes: 16,
            num_train_per_class: 12,
            num_test_per_class: 12,
            size: 16,
            channels: 3,
            num_genera: 1,
            noise: 1.0,
            distractors: 6,
            distractor_amp: 1.5,
            jitter: 1.3,
            seed: 0xC1FA,
        }
    }

    /// CUB-200 substitute defaults, calibrated so a quarter-width VGG
    /// plateaus in the paper's CUB accuracy regime: 20 fine-grained
    /// classes in 5 genera, 20×20 ("large scale images" relative to the
    /// CIFAR substitute, as in the paper), 30 train + 10 test per class
    /// (CUB itself is small: ~30 images per class).
    pub fn cub_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::CubLike,
            num_classes: 20,
            num_train_per_class: 30,
            num_test_per_class: 10,
            size: 20,
            channels: 3,
            num_genera: 5,
            noise: 0.6,
            distractors: 4,
            distractor_amp: 0.7,
            jitter: 0.8,
            seed: 0xCB20,
        }
    }

    /// Sets the class count (builder style).
    pub fn classes(mut self, n: usize) -> Self {
        self.num_classes = n;
        self
    }

    /// Sets training samples per class (builder style).
    pub fn train_per_class(mut self, n: usize) -> Self {
        self.num_train_per_class = n;
        self
    }

    /// Sets test samples per class (builder style).
    pub fn test_per_class(mut self, n: usize) -> Self {
        self.num_test_per_class = n;
        self
    }

    /// Sets the square image extent (builder style).
    pub fn image_size(mut self, s: usize) -> Self {
        self.size = s;
        self
    }

    /// Sets the genus count for fine-grained datasets (builder style).
    pub fn genera(mut self, n: usize) -> Self {
        self.num_genera = n;
        self
    }

    /// Sets the pixel-noise standard deviation (builder style).
    pub fn noise_std(mut self, sigma: f32) -> Self {
        self.noise = sigma;
        self
    }

    /// Sets the per-sample distractor count and amplitude (builder style).
    pub fn distractor(mut self, count: usize, amp: f32) -> Self {
        self.distractors = count;
        self.distractor_amp = amp;
        self
    }

    /// Sets the per-sample phase-jitter standard deviation (builder
    /// style).
    pub fn phase_jitter(mut self, sigma: f32) -> Self {
        self.jitter = sigma;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), DataError> {
        let bad = |field: &'static str, detail: String| Err(DataError::BadSpec { field, detail });
        if self.num_classes == 0 {
            return bad("classes", "must be > 0".into());
        }
        if self.num_train_per_class == 0 {
            return bad("train_per_class", "must be > 0".into());
        }
        if self.num_test_per_class == 0 {
            return bad("test_per_class", "must be > 0".into());
        }
        if self.size < 4 {
            return bad(
                "image_size",
                format!("{} is below the 4px minimum", self.size),
            );
        }
        if self.channels == 0 {
            return bad("channels", "must be > 0".into());
        }
        if self.num_genera == 0 {
            return bad("genera", "must be > 0".into());
        }
        if self.kind == DatasetKind::CubLike && self.num_genera > self.num_classes {
            return bad(
                "genera",
                format!(
                    "{} genera exceed {} classes",
                    self.num_genera, self.num_classes
                ),
            );
        }
        if !self.noise.is_finite() || self.noise < 0.0 {
            return bad("noise", format!("{} is not a valid std-dev", self.noise));
        }
        if !self.distractor_amp.is_finite() || self.distractor_amp < 0.0 {
            return bad(
                "distractor_amp",
                format!("{} is not a valid amplitude", self.distractor_amp),
            );
        }
        if !self.jitter.is_finite() || self.jitter < 0.0 {
            return bad("jitter", format!("{} is not a valid std-dev", self.jitter));
        }
        Ok(())
    }

    /// Total training samples.
    pub fn train_len(&self) -> usize {
        self.num_classes * self.num_train_per_class
    }

    /// Total test samples.
    pub fn test_len(&self) -> usize {
        self.num_classes * self.num_test_per_class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(DatasetSpec::cifar_like().validate().is_ok());
        assert!(DatasetSpec::cub_like().validate().is_ok());
    }

    #[test]
    fn builder_chains() {
        let s = DatasetSpec::cifar_like()
            .classes(5)
            .train_per_class(3)
            .test_per_class(2)
            .image_size(16)
            .noise_std(0.1)
            .with_seed(99);
        assert_eq!(s.num_classes, 5);
        assert_eq!(s.train_len(), 15);
        assert_eq!(s.test_len(), 10);
        assert_eq!(s.size, 16);
        assert_eq!(s.seed, 99);
    }

    #[test]
    fn invalid_fields_are_named() {
        let err = DatasetSpec::cifar_like().classes(0).validate().unwrap_err();
        assert!(matches!(
            err,
            DataError::BadSpec {
                field: "classes",
                ..
            }
        ));
        let err = DatasetSpec::cub_like()
            .genera(100)
            .classes(10)
            .validate()
            .unwrap_err();
        assert!(matches!(
            err,
            DataError::BadSpec {
                field: "genera",
                ..
            }
        ));
        let err = DatasetSpec::cifar_like()
            .image_size(2)
            .validate()
            .unwrap_err();
        assert!(matches!(
            err,
            DataError::BadSpec {
                field: "image_size",
                ..
            }
        ));
        let err = DatasetSpec::cifar_like()
            .noise_std(-1.0)
            .validate()
            .unwrap_err();
        assert!(matches!(err, DataError::BadSpec { field: "noise", .. }));
    }
}
