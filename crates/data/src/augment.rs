//! Training-time data augmentation: the standard CIFAR recipe
//! (random horizontal flip + pad-and-crop translation).

use hs_tensor::{Rng, Shape, Tensor};

use crate::error::DataError;

/// Augmentation configuration.
///
/// # Example
///
/// ```
/// use hs_data::Augment;
/// let aug = Augment::cifar_standard();
/// assert_eq!(aug.pad, 2);
/// assert!(aug.flip);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augment {
    /// Enable random horizontal flips (p = 0.5).
    pub flip: bool,
    /// Zero-pad this many pixels on every side, then crop back at a
    /// random offset (random translation by up to ±pad).
    pub pad: usize,
}

impl Augment {
    /// The standard CIFAR recipe: flip + 2-pixel translation (scaled
    /// from the canonical 4 pixels at 32×32 to this repository's
    /// smaller images).
    pub fn cifar_standard() -> Self {
        Augment { flip: true, pad: 2 }
    }

    /// No augmentation (identity).
    pub fn none() -> Self {
        Augment {
            flip: false,
            pad: 0,
        }
    }

    /// Applies the augmentation to a `[N, C, H, W]` batch, drawing one
    /// flip decision and one offset per *sample*.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] if `images` is not rank 4 or the
    /// padding exceeds the image extent.
    pub fn apply(&self, images: &Tensor, rng: &mut Rng) -> Result<Tensor, DataError> {
        let shape = images.shape();
        if shape.rank() != 4 {
            return Err(DataError::BadSpec {
                field: "augment",
                detail: format!("expected [N, C, H, W], got {shape}"),
            });
        }
        let (n, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        if self.pad >= h || self.pad >= w {
            return Err(DataError::BadSpec {
                field: "pad",
                detail: format!("padding {} too large for {h}x{w} images", self.pad),
            });
        }
        if !self.flip && self.pad == 0 {
            return Ok(images.clone());
        }
        let mut out = vec![0.0f32; images.len()];
        let src = images.data();
        let plane = h * w;
        for i in 0..n {
            let flip = self.flip && rng.bernoulli(0.5);
            // Offset in [-pad, +pad] per axis.
            let dy = rng.below(2 * self.pad + 1) as isize - self.pad as isize;
            let dx = rng.below(2 * self.pad + 1) as isize - self.pad as isize;
            for ch in 0..c {
                let base = (i * c + ch) * plane;
                for y in 0..h {
                    let sy = y as isize + dy;
                    if sy < 0 || sy >= h as isize {
                        continue; // zero padding
                    }
                    for x in 0..w {
                        let sx0 = x as isize + dx;
                        if sx0 < 0 || sx0 >= w as isize {
                            continue;
                        }
                        let sx = if flip {
                            w - 1 - sx0 as usize
                        } else {
                            sx0 as usize
                        };
                        out[base + y * w + x] = src[base + sy as usize * w + sx];
                    }
                }
            }
        }
        Ok(Tensor::from_vec(Shape::d4(n, c, h, w), out)?)
    }
}

impl Default for Augment {
    fn default() -> Self {
        Augment::cifar_standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_config_is_noop() {
        let mut rng = Rng::seed_from(0);
        let x = Tensor::randn(Shape::d4(2, 3, 6, 6), &mut rng);
        let y = Augment::none().apply(&x, &mut rng).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn flip_only_reverses_rows_sometimes() {
        let mut rng = Rng::seed_from(1);
        let aug = Augment { flip: true, pad: 0 };
        // One-row image so a flip is easy to detect.
        let x = Tensor::from_fn(Shape::d4(32, 1, 1, 4), |i| i[3] as f32);
        let y = aug.apply(&x, &mut rng).unwrap();
        let mut flipped = 0;
        let mut kept = 0;
        for i in 0..32 {
            let row: Vec<f32> = (0..4).map(|j| y.at(&[i, 0, 0, j])).collect();
            if row == [0.0, 1.0, 2.0, 3.0] {
                kept += 1;
            } else if row == [3.0, 2.0, 1.0, 0.0] {
                flipped += 1;
            } else {
                panic!("unexpected row {row:?}");
            }
        }
        assert!(flipped > 4 && kept > 4, "flip not ~50/50: {flipped}/{kept}");
    }

    #[test]
    fn translation_pads_with_zeros() {
        let mut rng = Rng::seed_from(2);
        let aug = Augment {
            flip: false,
            pad: 2,
        };
        let x = Tensor::ones(Shape::d4(16, 1, 5, 5));
        let y = aug.apply(&x, &mut rng).unwrap();
        // Every sample's content is still 0/1, and at least one sample
        // got shifted (has zeros from the padding).
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 1.0));
        let shifted = (0..16).any(|i| (0..25).any(|p| y.index_axis0(i).data()[p] == 0.0));
        assert!(shifted, "no sample was translated in 16 draws");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = Rng::seed_from(3);
        let aug = Augment::cifar_standard();
        assert!(aug
            .apply(&Tensor::zeros(Shape::d2(2, 2)), &mut rng)
            .is_err());
        let big_pad = Augment {
            flip: false,
            pad: 9,
        };
        assert!(big_pad
            .apply(&Tensor::zeros(Shape::d4(1, 1, 4, 4)), &mut rng)
            .is_err());
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(Shape::d4(3, 3, 8, 8), &mut rng);
        let y = Augment::cifar_standard().apply(&x, &mut rng).unwrap();
        assert_eq!(y.shape(), x.shape());
    }
}
