//! Synthetic image-classification datasets for the HeadStart reproduction.
//!
//! The paper evaluates on CIFAR-100 and the fine-grained CUB-200-2011.
//! Neither is available offline, so this crate *synthesizes* datasets with
//! the two statistical properties the pruning experiments depend on:
//!
//! * **Learnable multi-class structure** — each class is a procedural
//!   texture prototype (a small set of spatial frequency components plus
//!   a color bias); samples jitter the prototype. Class-discriminative
//!   information is spread unevenly over frequency bands, so different
//!   surviving-filter sets genuinely produce different accuracies, which
//!   is what makes "the inception matters" observable at all.
//! * **Fine-grainedness** (CUB substitute) — classes are grouped into
//!   *genera*; a class prototype is its genus prototype plus a small
//!   class-specific perturbation. Inter-class similarity is therefore
//!   much higher than in the CIFAR substitute, making wrong pruning
//!   decisions much more damaging — the contrast the paper's Table 1/2
//!   vs Table 3 rests on.
//!
//! Everything is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use hs_data::{DatasetSpec, Dataset};
//!
//! # fn main() -> Result<(), hs_data::DataError> {
//! let spec = DatasetSpec::cifar_like().classes(4).train_per_class(8).test_per_class(4).image_size(8);
//! let ds = Dataset::generate(&spec)?;
//! assert_eq!(ds.train_labels.len(), 32);
//! assert_eq!(ds.test_images.shape().dims(), &[16, 3, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod augment;
mod cache;
mod error;
mod generator;
mod loader;
mod spec;

pub use augment::Augment;
pub use cache::cached;
pub use error::DataError;
pub use generator::Dataset;
pub use loader::DataLoader;
pub use spec::{DatasetKind, DatasetSpec};
