//! Mini-batch iteration over a dataset split.

use hs_tensor::{Rng, Tensor};

use crate::error::DataError;

/// Iterates shuffled `(images, labels)` mini-batches over one split.
///
/// # Example
///
/// ```
/// use hs_data::{Dataset, DatasetSpec, DataLoader};
/// use hs_tensor::Rng;
///
/// # fn main() -> Result<(), hs_data::DataError> {
/// let ds = Dataset::generate(
///     &DatasetSpec::cifar_like().classes(2).train_per_class(4).test_per_class(2).image_size(8),
/// )?;
/// let mut rng = Rng::seed_from(0);
/// let mut loader = DataLoader::new(&ds.train_images, &ds.train_labels, 3)?;
/// let mut seen = 0;
/// for batch in loader.epoch(&mut rng) {
///     let (x, y) = batch?;
///     assert_eq!(x.shape().dim(0), y.len());
///     seen += y.len();
/// }
/// assert_eq!(seen, 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DataLoader<'a> {
    images: &'a Tensor,
    labels: &'a [usize],
    batch_size: usize,
}

impl<'a> DataLoader<'a> {
    /// Creates a loader over an image tensor and its labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSpec`] if the images are not `[N, C, H, W]`
    /// with one label per image, or if `batch_size` is zero.
    pub fn new(
        images: &'a Tensor,
        labels: &'a [usize],
        batch_size: usize,
    ) -> Result<Self, DataError> {
        if images.shape().rank() != 4 || images.shape().dim(0) != labels.len() {
            return Err(DataError::BadSpec {
                field: "loader",
                detail: format!("images {} vs {} labels", images.shape(), labels.len()),
            });
        }
        if batch_size == 0 {
            return Err(DataError::BadSpec {
                field: "batch_size",
                detail: "must be > 0".to_string(),
            });
        }
        Ok(DataLoader {
            images,
            labels,
            batch_size,
        })
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.labels.len().div_ceil(self.batch_size)
    }

    /// Returns an iterator over one shuffled epoch.
    pub fn epoch(&mut self, rng: &mut Rng) -> Epoch<'_> {
        let mut order: Vec<usize> = (0..self.labels.len()).collect();
        rng.shuffle(&mut order);
        Epoch {
            images: self.images,
            labels: self.labels,
            order,
            batch_size: self.batch_size,
            cursor: 0,
        }
    }
}

/// Iterator over the batches of one epoch; see [`DataLoader::epoch`].
#[derive(Debug)]
pub struct Epoch<'a> {
    images: &'a Tensor,
    labels: &'a [usize],
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Epoch<'_> {
    type Item = Result<(Tensor, Vec<usize>), DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        let labels: Vec<usize> = idx.iter().map(|&i| self.labels[i]).collect();
        Some(
            self.images
                .index_select(0, idx)
                .map(|images| (images, labels))
                .map_err(DataError::from),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Dataset;
    use crate::spec::DatasetSpec;

    fn ds() -> Dataset {
        Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(3)
                .train_per_class(5)
                .test_per_class(2)
                .image_size(8),
        )
        .unwrap()
    }

    #[test]
    fn epoch_covers_everything_once() {
        let ds = ds();
        let mut rng = Rng::seed_from(0);
        let mut loader = DataLoader::new(&ds.train_images, &ds.train_labels, 4).unwrap();
        assert_eq!(loader.batches_per_epoch(), 4);
        let mut label_counts = vec![0usize; 3];
        for batch in loader.epoch(&mut rng) {
            let (x, y) = batch.unwrap();
            assert_eq!(x.shape().dim(0), y.len());
            for l in y {
                label_counts[l] += 1;
            }
        }
        assert_eq!(label_counts, vec![5, 5, 5]);
    }

    #[test]
    fn shuffling_differs_between_epochs() {
        let ds = ds();
        let mut rng = Rng::seed_from(1);
        let mut loader = DataLoader::new(&ds.train_images, &ds.train_labels, 15).unwrap();
        let e1: Vec<usize> = loader.epoch(&mut rng).next().unwrap().unwrap().1;
        let e2: Vec<usize> = loader.epoch(&mut rng).next().unwrap().unwrap().1;
        assert_ne!(e1, e2);
    }

    #[test]
    fn rejects_bad_construction() {
        let ds = ds();
        assert!(DataLoader::new(&ds.train_images, &ds.train_labels[..3], 4).is_err());
        assert!(DataLoader::new(&ds.train_images, &ds.train_labels, 0).is_err());
    }
}
