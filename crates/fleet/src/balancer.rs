//! Pluggable load-balancer policies over the routable replica set.
//!
//! All three policies are deterministic: round-robin and
//! join-shortest-queue carry no randomness, and power-of-two-choices
//! draws from a splitmix64 stream seeded at construction — two fleets
//! built with the same seed make identical picks over identical
//! candidate sequences.

use hs_telemetry::trace;

/// Which policy the front-end routes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Cycle through the routable replicas in id order.
    RoundRobin,
    /// Pick the routable replica with the shallowest queue (ties break
    /// to the lowest id).
    JoinShortestQueue,
    /// Sample two routable replicas from the seeded stream and keep the
    /// shallower one — near-JSQ behaviour without global depth scans.
    PowerOfTwo,
}

impl BalancerPolicy {
    /// Stable name used in flags and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BalancerPolicy::RoundRobin => "round_robin",
            BalancerPolicy::JoinShortestQueue => "jsq",
            BalancerPolicy::PowerOfTwo => "p2c",
        }
    }

    /// Parses a flag value (`round_robin` / `jsq` / `p2c`).
    pub fn parse(s: &str) -> Option<BalancerPolicy> {
        match s {
            "round_robin" => Some(BalancerPolicy::RoundRobin),
            "jsq" => Some(BalancerPolicy::JoinShortestQueue),
            "p2c" => Some(BalancerPolicy::PowerOfTwo),
            _ => None,
        }
    }
}

/// A stateful balancer: owns the round-robin cursor / the p2c RNG.
#[derive(Debug)]
pub struct Balancer {
    policy: BalancerPolicy,
    /// Next replica id the round-robin cursor prefers.
    cursor: usize,
    /// splitmix64 state for power-of-two-choices.
    rng: u64,
}

impl Balancer {
    /// A balancer for `policy`, drawing any randomness from `seed`.
    pub fn new(policy: BalancerPolicy, seed: u64) -> Balancer {
        Balancer {
            policy,
            cursor: 0,
            rng: trace::mix(seed ^ 0x6261_6c61_6e63_6572), // "balancer"
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> BalancerPolicy {
        self.policy
    }

    fn draw(&mut self, bound: usize) -> usize {
        self.rng = trace::mix(self.rng);
        (self.rng % bound as u64) as usize
    }

    /// Picks a replica id from `candidates` — `(replica id, queue
    /// depth)` pairs in ascending id order — or `None` when the set is
    /// empty.
    pub fn pick(&mut self, candidates: &[(usize, usize)]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let id = match self.policy {
            BalancerPolicy::RoundRobin => {
                // First candidate at or past the cursor, wrapping to the
                // lowest id — ejected replicas are simply skipped over.
                let (id, _) = candidates
                    .iter()
                    .find(|(id, _)| *id >= self.cursor)
                    .unwrap_or(&candidates[0]);
                self.cursor = id + 1;
                *id
            }
            BalancerPolicy::JoinShortestQueue => {
                let (id, _) = candidates
                    .iter()
                    .min_by_key(|(id, depth)| (*depth, *id))
                    .expect("candidates is non-empty");
                *id
            }
            BalancerPolicy::PowerOfTwo => {
                let a = candidates[self.draw(candidates.len())];
                let b = candidates[self.draw(candidates.len())];
                if (b.1, b.0) < (a.1, a.0) {
                    b.0
                } else {
                    a.0
                }
            }
        };
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_and_skips_ejected_ids() {
        let mut b = Balancer::new(BalancerPolicy::RoundRobin, 7);
        let all = [(0, 0), (1, 0), (2, 0)];
        assert_eq!(b.pick(&all), Some(0));
        assert_eq!(b.pick(&all), Some(1));
        assert_eq!(b.pick(&all), Some(2));
        assert_eq!(b.pick(&all), Some(0), "wraps");
        // Replica 1 drops out: the cursor (1) skips to 2.
        let partial = [(0, 0), (2, 0)];
        assert_eq!(b.pick(&partial), Some(2));
        assert_eq!(b.pick(&partial), Some(0));
    }

    #[test]
    fn jsq_prefers_the_shallowest_queue_then_the_lowest_id() {
        let mut b = Balancer::new(BalancerPolicy::JoinShortestQueue, 7);
        assert_eq!(b.pick(&[(0, 5), (1, 2), (2, 9)]), Some(1));
        assert_eq!(
            b.pick(&[(0, 3), (1, 3), (2, 9)]),
            Some(0),
            "tie -> lowest id"
        );
        assert_eq!(b.pick(&[]), None);
    }

    #[test]
    fn p2c_is_seed_deterministic_and_never_picks_outside_the_set() {
        let picks = |seed: u64| -> Vec<usize> {
            let mut b = Balancer::new(BalancerPolicy::PowerOfTwo, seed);
            (0..32)
                .map(|i| b.pick(&[(0, i % 3), (1, 2), (2, 0)]).unwrap())
                .collect()
        };
        let a = picks(42);
        assert_eq!(a, picks(42), "same seed, same picks");
        assert!(a.iter().all(|id| *id <= 2));
        // With replica 2 permanently empty, p2c should favour it.
        assert!(a.iter().filter(|id| **id == 2).count() > a.len() / 3);
    }
}
