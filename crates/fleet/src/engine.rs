//! The fleet front-end: N replica engines behind one admission door.
//!
//! [`FleetEngine`] owns `replicas` independent [`ServeEngine`]s — each
//! with its own admission queue, circuit breaker, and degradation
//! state — and routes every accepted request to exactly one of them
//! through a pluggable [`Balancer`]. Like the single-replica engine it
//! is a virtual-time discrete-event machine: the driver calls
//! [`FleetEngine::tick`]/[`FleetEngine::submit`] with a monotone `now`
//! and the fleet interleaves three event streams deterministically —
//! per-replica batch flushes, health probes on a fixed cadence, and
//! hedge deadlines. Two runs over the same plan, seed, and `HS_FAULT`
//! string produce byte-identical telemetry (modulo wall-clock
//! suffixes).
//!
//! Fleet admission runs, in order: **priority shed** (while the fleet
//! is degraded, classes at or above `shed_min_class` are turned away),
//! **tenant quota** (at most `tenant_quota` in-flight requests per
//! tenant), **routing** (balancer pick over the routable set), then
//! the chosen replica's own admission (queue bound + deadline check).
//!
//! Replica-scoped faults (`HS_FAULT=replica_crash:replica1:5,...`) are
//! sampled at probe time: `replica_crash` downs a replica permanently,
//! `replica_flap` toggles it down/up per firing, and `replica_slow`
//! toggles a compute-cost multiplier. Probe failures walk the
//! [health machine](crate::health); ejection evicts the replica's
//! queue and **fails the evicted requests over** to live replicas (or
//! sheds them with a typed reason when none can take them) — an
//! accepted request never silently disappears.

use std::collections::BTreeMap;

use hs_nn::infer::SharedNetwork;
use hs_serve::{
    LoadProfile, Micros, ModelSlots, Outcome, RejectReason, Request, Response, ServeConfig,
    ServeEngine, ServeError, ServeSummary,
};
use hs_telemetry::{faults, metrics, trace, Event, EventKind, Level, TraceCtx};
use hs_tensor::Tensor;

use crate::balancer::{Balancer, BalancerPolicy};
use crate::health::{HealthState, HealthTracker};

/// Fleet knobs. Durations are virtual microseconds, like everything
/// downstream.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Replica count (min 1).
    pub replicas: usize,
    /// Load-balancer policy for routing and failover placement.
    pub policy: BalancerPolicy,
    /// Health-probe cadence; 0 disables probing (and with it fault
    /// sampling, ejection, and recovery).
    pub probe_every: Micros,
    /// Consecutive probe failures before a healthy replica turns
    /// suspect.
    pub suspect_after: usize,
    /// Further consecutive failures before a suspect replica is
    /// ejected (queue evicted, requests failed over).
    pub eject_after: usize,
    /// Consecutive probe successes an ejected replica needs to rejoin
    /// the routable set (and a recovered one to be healthy again).
    pub recover_after: usize,
    /// A request with no terminal outcome after this long gets a hedge
    /// copy on a second replica; 0 disables hedging.
    pub hedge_after: Micros,
    /// Global budget of hedge launches for the whole session — the
    /// retry budget that keeps hedging from amplifying an overload.
    pub hedge_budget: u64,
    /// Compute-cost multiplier applied to a replica while a
    /// `replica_slow` fault holds it.
    pub slow_multiplier: u64,
    /// Max in-flight requests per tenant at fleet admission; 0 means
    /// unlimited.
    pub tenant_quota: usize,
    /// While the fleet is degraded (any replica unroutable), requests
    /// of SLO class >= this are shed at admission to protect higher
    /// priorities. `usize::MAX` disables priority shedding.
    pub shed_min_class: usize,
    /// Seed for fleet/health/balancer trace and RNG derivation; each
    /// replica engine gets `mix(trace_seed ^ (id + 1))`.
    pub trace_seed: u64,
    /// Per-replica engine template (`replica` and `trace_seed` are
    /// overridden per instance).
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            replicas: 3,
            policy: BalancerPolicy::RoundRobin,
            probe_every: 2_000,
            suspect_after: 1,
            eject_after: 1,
            recover_after: 2,
            hedge_after: 5_000,
            hedge_budget: 16,
            slow_multiplier: 4,
            tenant_quota: 0,
            shed_min_class: usize::MAX,
            trace_seed: 0x4853,
            serve: ServeConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Worst-case virtual time from a replica going dark to its
    /// ejection: every request stranded on it is failed over (or shed
    /// typed) within this budget.
    pub fn failover_budget(&self) -> Micros {
        self.probe_every * (self.suspect_after.max(1) + self.eject_after.max(1)) as Micros
    }
}

/// Why the fleet (rather than a single replica) shed a request, or the
/// replica-level reason forwarded through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetReject {
    /// The routed replica shed it with its own typed reason.
    Replica(RejectReason),
    /// The tenant already had its quota of requests in flight.
    TenantQuota {
        /// The over-quota tenant.
        tenant: usize,
        /// Its in-flight count at the decision.
        in_flight: usize,
        /// The configured quota.
        quota: usize,
    },
    /// Shed at admission to protect higher-priority classes while the
    /// fleet is degraded.
    PriorityShed {
        /// The request's SLO class.
        class: usize,
        /// Classes at or above this are shed while degraded.
        min_class: usize,
    },
    /// No routable replica could take it.
    NoReplicaAvailable,
}

impl FleetReject {
    /// Stable short name used in telemetry fields and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetReject::Replica(r) => r.as_str(),
            FleetReject::TenantQuota { .. } => "tenant_quota",
            FleetReject::PriorityShed { .. } => "priority_shed",
            FleetReject::NoReplicaAvailable => "no_replica",
        }
    }
}

/// A fleet-shed request: which one, why, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRejection {
    /// The request id.
    pub id: u64,
    /// Why it was shed.
    pub reason: FleetReject,
    /// When the decision was made.
    pub at: Micros,
}

/// A request's terminal outcome as seen at the fleet front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetOutcome {
    /// Served with a prediction, in deadline.
    Completed {
        /// The winning replica's response.
        response: Response,
        /// Which replica produced it.
        replica: usize,
        /// End-to-end latency from the *original* fleet arrival (a
        /// failed-over or hedged request keeps its first arrival time).
        latency: Micros,
        /// Whether a hedge copy was launched for this request.
        hedged: bool,
    },
    /// Shed with a typed reason.
    Rejected(FleetRejection),
}

impl FleetOutcome {
    /// The request id this outcome belongs to.
    pub fn id(&self) -> u64 {
        match self {
            FleetOutcome::Completed { response, .. } => response.id,
            FleetOutcome::Rejected(r) => r.id,
        }
    }
}

/// Aggregate counters for a fleet session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetSummary {
    /// Requests offered at the fleet front door.
    pub submitted: u64,
    /// Requests served with a prediction.
    pub completed: u64,
    /// Requests shed by a replica engine (admission or expiry).
    pub rejected_replica: u64,
    /// Requests shed at the fleet door by the tenant quota.
    pub rejected_tenant_quota: u64,
    /// Requests shed at the fleet door by priority protection.
    pub rejected_priority: u64,
    /// Requests shed because no routable replica could take them.
    pub rejected_no_replica: u64,
    /// Requests successfully moved off an ejected replica.
    pub failovers: u64,
    /// Requests evicted at ejection that could not be re-placed.
    pub failover_sheds: u64,
    /// Hedge copies launched.
    pub hedges_launched: u64,
    /// Hedges whose copy produced the winning completion.
    pub hedges_won: u64,
    /// Hedges whose primary won (or that never got the chance).
    pub hedges_lost: u64,
    /// Hedge attempts denied (budget, no replica, or admission).
    pub hedges_rejected: u64,
    /// Replica ejections.
    pub ejections: u64,
    /// Replica recoveries (ejected -> routable again).
    pub recoveries: u64,
    /// Probe rounds run.
    pub probes: u64,
    /// Worst completed-request latency from original arrival.
    pub max_latency_micros: Micros,
    /// Sum of completed-request latencies (for means).
    pub total_latency_micros: Micros,
}

impl FleetSummary {
    /// All shed requests, regardless of where the decision was made.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_replica
            + self.rejected_tenant_quota
            + self.rejected_priority
            + self.rejected_no_replica
    }
}

/// One replica: its engine plus the fleet's view of it.
#[derive(Debug)]
struct Replica {
    engine: ServeEngine,
    health: HealthTracker,
    /// Not answering probes or batches (crashed or flapped down).
    down: bool,
    /// Permanently down (`replica_crash` fired).
    crashed: bool,
    /// `replica_slow` currently holds it (cost multiplier active).
    slowed: bool,
}

/// Fleet-side bookkeeping for one accepted, not-yet-terminal request.
#[derive(Debug)]
struct Pending {
    tenant: usize,
    class: usize,
    sample: usize,
    /// Original fleet arrival (latency baseline across failovers).
    arrival: Micros,
    deadline: Micros,
    /// Replicas currently holding a live copy (primary first).
    copies: Vec<usize>,
    /// Where the hedge copy went, sticky once launched.
    hedge_replica: Option<usize>,
    /// Whether the hedge's win/loss has been decided and emitted.
    hedge_settled: bool,
    /// When a hedge becomes due; `Micros::MAX` once spent or disabled.
    hedge_at: Micros,
}

/// The replicated front-end. See the module docs for the time model.
#[derive(Debug)]
pub struct FleetEngine {
    cfg: FleetConfig,
    replicas: Vec<Replica>,
    balancer: Balancer,
    /// Accepted requests awaiting their terminal outcome, by id.
    pending: BTreeMap<u64, Pending>,
    /// Ids already resolved whose redundant copies are still queued
    /// somewhere; maps to how many more engine outcomes to discard.
    swallow: BTreeMap<u64, u8>,
    tenant_inflight: BTreeMap<usize, usize>,
    next_probe: Micros,
    hedges_spent: u64,
    now: Micros,
    stats: FleetSummary,
    /// Root span for fleet-level events (failover/hedge/fleet sheds).
    ctx: TraceCtx,
    seq: u64,
}

impl FleetEngine {
    /// A fleet of `cfg.replicas` engines, each serving its own clone of
    /// the model pair over the shared input pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] when the input pool is empty.
    pub fn new(
        cfg: FleetConfig,
        dense: SharedNetwork,
        pruned: SharedNetwork,
        inputs: Tensor,
    ) -> Result<FleetEngine, ServeError> {
        let n = cfg.replicas.max(1);
        let mut replicas = Vec::with_capacity(n);
        for k in 0..n {
            let mut scfg = cfg.serve;
            scfg.replica = Some(k);
            scfg.trace_seed = trace::mix(cfg.trace_seed ^ (k as u64 + 1));
            let engine = ServeEngine::new(
                scfg,
                ModelSlots::new(dense.clone(), pruned.clone()),
                inputs.clone(),
            )?;
            replicas.push(Replica {
                engine,
                health: HealthTracker::new(
                    k,
                    cfg.suspect_after,
                    cfg.eject_after,
                    cfg.recover_after,
                    cfg.trace_seed,
                ),
                down: false,
                crashed: false,
                slowed: false,
            });
        }
        metrics::gauge("hs_fleet_routable_replicas").set(n as f64);
        Ok(FleetEngine {
            replicas,
            balancer: Balancer::new(cfg.policy, cfg.trace_seed),
            pending: BTreeMap::new(),
            swallow: BTreeMap::new(),
            tenant_inflight: BTreeMap::new(),
            next_probe: if cfg.probe_every > 0 {
                cfg.probe_every
            } else {
                Micros::MAX
            },
            hedges_spent: 0,
            now: 0,
            stats: FleetSummary::default(),
            ctx: trace::unit_ctx(cfg.trace_seed, "fleet_engine", 0),
            seq: 0,
            cfg,
        })
    }

    /// Replica count.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Counters so far.
    pub fn summary(&self) -> FleetSummary {
        self.stats
    }

    /// Replica `k`'s health state.
    pub fn health(&self, k: usize) -> HealthState {
        self.replicas[k].health.state()
    }

    /// Replica `k`'s own engine counters.
    pub fn replica_summary(&self, k: usize) -> ServeSummary {
        self.replicas[k].engine.summary()
    }

    /// Requests accepted but not yet terminal.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn routable_candidates(&self, exclude: &[usize]) -> Vec<(usize, usize)> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(k, r)| !exclude.contains(k) && r.health.state().routable())
            .map(|(k, r)| (k, r.engine.queue_depth()))
            .collect()
    }

    /// When the next internal event fires: a replica batch flush, a
    /// health probe, or a hedge deadline. While draining, probes only
    /// count as events when queued work still depends on them.
    fn next_internal(&self, draining: bool) -> Option<Micros> {
        let mut t = Micros::MAX;
        let mut queued = false;
        for r in &self.replicas {
            if r.engine.queue_depth() > 0 {
                queued = true;
            }
            if !r.down {
                if let Some(e) = r.engine.next_event() {
                    t = t.min(e);
                }
            }
        }
        if self.cfg.probe_every > 0 && (!draining || queued) {
            t = t.min(self.next_probe);
        }
        for p in self.pending.values() {
            t = t.min(p.hedge_at);
        }
        (t != Micros::MAX).then_some(t)
    }

    /// When the next internal event fires. With probing enabled this is
    /// always `Some` (the probe cadence never stops while the driver is
    /// live); [`drain`](FleetEngine::drain) uses a bounded variant.
    pub fn next_event(&self) -> Option<Micros> {
        self.next_internal(false)
    }

    /// Offers a request at `now` (call [`tick`](FleetEngine::tick) with
    /// the same `now` first). Returns the typed rejection when the
    /// request is shed at the fleet door or at the routed replica's
    /// admission, `None` when accepted — accepted requests surface
    /// later as [`FleetOutcome`]s from `tick`/`drain`.
    pub fn submit(&mut self, req: Request, now: Micros) -> Option<FleetRejection> {
        self.stats.submitted += 1;
        let candidates = self.routable_candidates(&[]);
        if candidates.len() < self.replicas.len() && req.class >= self.cfg.shed_min_class {
            return Some(self.fleet_shed(
                req.id,
                FleetReject::PriorityShed {
                    class: req.class,
                    min_class: self.cfg.shed_min_class,
                },
                now,
            ));
        }
        if self.cfg.tenant_quota > 0 {
            let in_flight = *self.tenant_inflight.get(&req.tenant).unwrap_or(&0);
            if in_flight >= self.cfg.tenant_quota {
                return Some(self.fleet_shed(
                    req.id,
                    FleetReject::TenantQuota {
                        tenant: req.tenant,
                        in_flight,
                        quota: self.cfg.tenant_quota,
                    },
                    now,
                ));
            }
        }
        let Some(target) = self.balancer.pick(&candidates) else {
            return Some(self.fleet_shed(req.id, FleetReject::NoReplicaAvailable, now));
        };
        let (id, tenant, class, sample, arrival, deadline) = (
            req.id,
            req.tenant,
            req.class,
            req.sample,
            req.arrival,
            req.deadline,
        );
        match self.replicas[target].engine.submit(req, now) {
            Some(rej) => {
                self.stats.rejected_replica += 1;
                Some(FleetRejection {
                    id,
                    reason: FleetReject::Replica(rej.reason),
                    at: rej.at,
                })
            }
            None => {
                *self.tenant_inflight.entry(tenant).or_insert(0) += 1;
                let hedge_at = if self.cfg.hedge_after > 0 {
                    now + self.cfg.hedge_after
                } else {
                    Micros::MAX
                };
                self.pending.insert(
                    id,
                    Pending {
                        tenant,
                        class,
                        sample,
                        arrival,
                        deadline,
                        copies: vec![target],
                        hedge_replica: None,
                        hedge_settled: false,
                        hedge_at,
                    },
                );
                None
            }
        }
    }

    /// Advances virtual time to `now`, running every batch flush, probe
    /// round, and hedge launch due on the way. Returns the terminal
    /// outcomes produced.
    ///
    /// # Errors
    ///
    /// [`ServeError::Nn`] when a replica's forward pass fails.
    pub fn tick(&mut self, now: Micros) -> Result<Vec<FleetOutcome>, ServeError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_internal(false) {
            if t > now {
                break;
            }
            self.step(t, &mut out)?;
        }
        self.now = self.now.max(now);
        Ok(out)
    }

    /// Drains all outstanding work after the last arrival, running
    /// probes only as long as stranded queues still need them. Any
    /// request left with no path to progress (e.g. stranded on a down
    /// replica with probing disabled) is shed typed — an accepted
    /// request always gets a terminal outcome.
    ///
    /// # Errors
    ///
    /// Same as [`tick`](FleetEngine::tick).
    pub fn drain(&mut self) -> Result<Vec<FleetOutcome>, ServeError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_internal(true) {
            self.step(t, &mut out)?;
        }
        let stranded: Vec<u64> = self.pending.keys().copied().collect();
        for id in stranded {
            let p = self.pending.remove(&id).expect("id from pending keys");
            if let Some(n) = self.tenant_inflight.get_mut(&p.tenant) {
                *n = n.saturating_sub(1);
            }
            let at = self.now;
            let rej = self.fleet_shed(id, FleetReject::NoReplicaAvailable, at);
            out.push(FleetOutcome::Rejected(rej));
        }
        Ok(out)
    }

    /// Runs every event due exactly by `t`: replica batches first (a
    /// completion beats an ejection at the same tick), then probes,
    /// then hedge launches (so a request completing right at its hedge
    /// deadline doesn't spawn a pointless copy).
    fn step(&mut self, t: Micros, out: &mut Vec<FleetOutcome>) -> Result<(), ServeError> {
        self.now = self.now.max(t);
        for k in 0..self.replicas.len() {
            if self.replicas[k].down {
                continue;
            }
            let outcomes = self.replicas[k].engine.tick(t)?;
            self.absorb(k, outcomes, out);
        }
        while self.cfg.probe_every > 0 && self.next_probe <= t {
            let pt = self.next_probe;
            self.next_probe += self.cfg.probe_every.max(1);
            self.run_probes(pt, out);
        }
        self.launch_hedges(t);
        Ok(())
    }

    /// One probe round: sample replica-scoped faults, probe each
    /// replica in id order, walk the health machines, and eject/recover
    /// as they dictate.
    fn run_probes(&mut self, pt: Micros, out: &mut Vec<FleetOutcome>) {
        self.stats.probes += 1;
        let armed = faults::armed();
        for k in 0..self.replicas.len() {
            let site = format!("replica{k}");
            if armed {
                if faults::trip("replica_crash", &site) && !self.replicas[k].crashed {
                    self.replicas[k].crashed = true;
                    self.replicas[k].down = true;
                }
                if faults::trip("replica_slow", &site) {
                    let slowed = !self.replicas[k].slowed;
                    self.replicas[k].slowed = slowed;
                    let m = if slowed { self.cfg.slow_multiplier } else { 1 };
                    self.replicas[k].engine.set_cost_multiplier(m);
                }
                if faults::trip("replica_flap", &site) && !self.replicas[k].crashed {
                    self.replicas[k].down = !self.replicas[k].down;
                }
            }
            let mut ok = !self.replicas[k].down;
            // `probe_loss` swallows this round's probe *signal* without
            // touching the replica: the prober reads silence as failure,
            // so repeated losses walk Healthy -> Suspect -> Ejected on a
            // replica that was up the whole time — and once the losses
            // stop, genuine probes drive Ejected -> Recovered -> Healthy.
            if armed && faults::trip("probe_loss", &site) {
                ok = false;
            }
            if let Some((_, to)) = self.replicas[k].health.observe(ok, pt) {
                match to {
                    HealthState::Ejected => {
                        self.stats.ejections += 1;
                        metrics::counter("hs_fleet_ejections_total").inc();
                        self.eject(k, pt, out);
                    }
                    HealthState::Recovered => self.stats.recoveries += 1,
                    _ => {}
                }
            }
        }
        let routable = self.routable_candidates(&[]).len();
        metrics::gauge("hs_fleet_routable_replicas").set(routable as f64);
    }

    /// Evicts replica `k`'s queue and re-places every stranded request:
    /// covered by a live sibling copy, rerouted to another replica, or
    /// shed with a typed reason.
    fn eject(&mut self, k: usize, pt: Micros, out: &mut Vec<FleetOutcome>) {
        let evicted = self.replicas[k].engine.evict_queued();
        for req in evicted {
            let id = req.id;
            if self.swallow_one(id) {
                continue;
            }
            let (covered, hedge_lost) = match self.pending.get_mut(&id) {
                None => continue,
                Some(p) => {
                    p.copies.retain(|r| *r != k);
                    let covered = !p.copies.is_empty();
                    let hedge_lost = covered && !p.hedge_settled && p.hedge_replica == Some(k);
                    if hedge_lost {
                        p.hedge_settled = true;
                    }
                    (covered, hedge_lost)
                }
            };
            if covered {
                if hedge_lost {
                    self.stats.hedges_lost += 1;
                    self.emit_hedge(id, "lost", Some(k), pt, None);
                }
                self.emit_failover(id, k, None, "hedged", pt);
                continue;
            }
            let candidates = self.routable_candidates(&[k]);
            match self.balancer.pick(&candidates) {
                None => {
                    self.drop_pending(id);
                    self.stats.failover_sheds += 1;
                    self.emit_failover(id, k, None, "shed", pt);
                    let rej = self.fleet_shed(id, FleetReject::NoReplicaAvailable, pt);
                    out.push(FleetOutcome::Rejected(rej));
                }
                Some(to) => {
                    let copy = Request {
                        id,
                        sample: req.sample,
                        class: req.class,
                        tenant: req.tenant,
                        arrival: pt,
                        deadline: req.deadline,
                    };
                    match self.replicas[to].engine.submit(copy, pt) {
                        None => {
                            if let Some(p) = self.pending.get_mut(&id) {
                                p.copies.push(to);
                            }
                            self.stats.failovers += 1;
                            metrics::counter("hs_fleet_failovers_total").inc();
                            self.emit_failover(id, k, Some(to), "rerouted", pt);
                        }
                        Some(rej) => {
                            self.drop_pending(id);
                            self.stats.rejected_replica += 1;
                            self.stats.failover_sheds += 1;
                            self.emit_failover(id, k, Some(to), "shed", pt);
                            out.push(FleetOutcome::Rejected(FleetRejection {
                                id,
                                reason: FleetReject::Replica(rej.reason),
                                at: rej.at,
                            }));
                        }
                    }
                }
            }
        }
    }

    /// Launches hedge copies for every pending request whose hedge
    /// deadline has passed, within the global budget.
    fn launch_hedges(&mut self, t: Micros) {
        if self.cfg.hedge_after == 0 {
            return;
        }
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.hedge_at <= t)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            let (holders, sample, class, tenant, deadline) = {
                let p = self.pending.get_mut(&id).expect("id from pending keys");
                // One attempt per request, whatever happens below.
                p.hedge_at = Micros::MAX;
                (p.copies.clone(), p.sample, p.class, p.tenant, p.deadline)
            };
            if self.hedges_spent >= self.cfg.hedge_budget {
                self.stats.hedges_rejected += 1;
                self.emit_hedge(id, "rejected", None, t, Some("budget"));
                continue;
            }
            let candidates = self.routable_candidates(&holders);
            let Some(to) = self.balancer.pick(&candidates) else {
                self.stats.hedges_rejected += 1;
                self.emit_hedge(id, "rejected", None, t, Some("no_replica"));
                continue;
            };
            self.hedges_spent += 1;
            let copy = Request {
                id,
                sample,
                class,
                tenant,
                arrival: t,
                deadline,
            };
            match self.replicas[to].engine.submit(copy, t) {
                None => {
                    let p = self.pending.get_mut(&id).expect("id from pending keys");
                    p.copies.push(to);
                    p.hedge_replica = Some(to);
                    self.stats.hedges_launched += 1;
                    metrics::counter("hs_fleet_hedges_launched_total").inc();
                    self.emit_hedge(id, "launched", Some(to), t, None);
                }
                Some(_) => {
                    // The target shed the copy at admission; the primary
                    // still carries the request, so this is not terminal.
                    self.stats.hedges_rejected += 1;
                    self.emit_hedge(id, "rejected", Some(to), t, Some("admission"));
                }
            }
        }
    }

    /// Folds one replica's engine outcomes into fleet outcomes: the
    /// first completion (or the last live copy's shed) is terminal;
    /// redundant copies are discarded without a second outcome.
    fn absorb(&mut self, k: usize, outcomes: Vec<Outcome>, out: &mut Vec<FleetOutcome>) {
        for o in outcomes {
            let id = o.id();
            if self.swallow_one(id) {
                continue;
            }
            let at = match &o {
                Outcome::Completed(r) => r.completed,
                Outcome::Rejected(r) => r.at,
            };
            let live_copies = match self.pending.get(&id) {
                None => continue,
                Some(p) => p.copies.len(),
            };
            if matches!(o, Outcome::Rejected(_)) && live_copies > 1 {
                // A shed copy while a sibling still carries the request.
                let hedge_lost = {
                    let p = self.pending.get_mut(&id).expect("pending id checked above");
                    p.copies.retain(|r| *r != k);
                    let lost = !p.hedge_settled && p.hedge_replica == Some(k);
                    if lost {
                        p.hedge_settled = true;
                    }
                    lost
                };
                if hedge_lost {
                    self.stats.hedges_lost += 1;
                    self.emit_hedge(id, "lost", Some(k), at, None);
                }
                continue;
            }
            let mut p = self.pending.remove(&id).expect("pending id checked above");
            p.copies.retain(|r| *r != k);
            if !p.copies.is_empty() {
                self.swallow.insert(id, p.copies.len() as u8);
            }
            if let Some(n) = self.tenant_inflight.get_mut(&p.tenant) {
                *n = n.saturating_sub(1);
            }
            let hedged = p.hedge_replica.is_some();
            if hedged && !p.hedge_settled {
                if p.hedge_replica == Some(k) && matches!(o, Outcome::Completed(_)) {
                    self.stats.hedges_won += 1;
                    self.emit_hedge(id, "won", Some(k), at, None);
                } else {
                    self.stats.hedges_lost += 1;
                    self.emit_hedge(id, "lost", p.hedge_replica, at, None);
                }
            }
            match o {
                Outcome::Completed(response) => {
                    let latency = response.completed.saturating_sub(p.arrival);
                    self.stats.completed += 1;
                    self.stats.total_latency_micros += latency;
                    self.stats.max_latency_micros = self.stats.max_latency_micros.max(latency);
                    out.push(FleetOutcome::Completed {
                        response,
                        replica: k,
                        latency,
                        hedged,
                    });
                }
                Outcome::Rejected(rej) => {
                    self.stats.rejected_replica += 1;
                    out.push(FleetOutcome::Rejected(FleetRejection {
                        id,
                        reason: FleetReject::Replica(rej.reason),
                        at: rej.at,
                    }));
                }
            }
        }
    }

    /// Discards one expected redundant outcome for `id`; true when the
    /// id was in the swallow set.
    fn swallow_one(&mut self, id: u64) -> bool {
        if let Some(left) = self.swallow.get_mut(&id) {
            *left -= 1;
            if *left == 0 {
                self.swallow.remove(&id);
            }
            true
        } else {
            false
        }
    }

    /// Forgets a pending request (terminal decided at the fleet level).
    fn drop_pending(&mut self, id: u64) {
        if let Some(p) = self.pending.remove(&id) {
            if let Some(n) = self.tenant_inflight.get_mut(&p.tenant) {
                *n = n.saturating_sub(1);
            }
        }
    }

    /// Records a fleet-level shed: counters, one `serve_request` event
    /// with the typed outcome, and the rejection value.
    fn fleet_shed(&mut self, id: u64, reason: FleetReject, at: Micros) -> FleetRejection {
        match &reason {
            FleetReject::Replica(_) => self.stats.rejected_replica += 1,
            FleetReject::TenantQuota { .. } => self.stats.rejected_tenant_quota += 1,
            FleetReject::PriorityShed { .. } => self.stats.rejected_priority += 1,
            FleetReject::NoReplicaAvailable => self.stats.rejected_no_replica += 1,
        }
        metrics::counter("hs_fleet_rejected_total").inc();
        let ctx = self.ctx.child(self.seq);
        self.seq += 1;
        let mut event = Event::new(EventKind::ServeRequest, Level::Warn, "fleet/request")
            .field("id", id)
            .field("outcome", reason.as_str())
            .field("at", at)
            .traced(&ctx);
        match &reason {
            FleetReject::TenantQuota {
                tenant,
                in_flight,
                quota,
            } => {
                event = event
                    .field("tenant", *tenant)
                    .field("in_flight", *in_flight as u64)
                    .field("quota", *quota as u64);
            }
            FleetReject::PriorityShed { class, min_class } => {
                event = event
                    .field("slo_class", *class)
                    .field("min_class", *min_class as u64);
            }
            _ => {}
        }
        hs_telemetry::emit(event);
        FleetRejection { id, reason, at }
    }

    fn emit_failover(
        &mut self,
        id: u64,
        from: usize,
        to: Option<usize>,
        outcome: &str,
        at: Micros,
    ) {
        let ctx = self.ctx.child(self.seq);
        self.seq += 1;
        let mut event = Event::new(EventKind::Failover, Level::Warn, "fleet/failover")
            .message(format!("request {id} moved off replica {from}: {outcome}"))
            .field("id", id)
            .field("from", from)
            .field("outcome", outcome)
            .field("at", at)
            .traced(&ctx);
        if let Some(to) = to {
            event = event.field("to", to);
        }
        hs_telemetry::emit(event);
    }

    fn emit_hedge(
        &mut self,
        id: u64,
        outcome: &str,
        replica: Option<usize>,
        at: Micros,
        reason: Option<&str>,
    ) {
        let level = if outcome == "rejected" {
            Level::Warn
        } else {
            Level::Info
        };
        let ctx = self.ctx.child(self.seq);
        self.seq += 1;
        let mut event = Event::new(EventKind::Hedge, level, "fleet/hedge")
            .field("id", id)
            .field("outcome", outcome)
            .field("at", at)
            .traced(&ctx);
        if let Some(replica) = replica {
            event = event.field("replica", replica);
        }
        if let Some(reason) = reason {
            event = event.field("reason", reason);
        }
        hs_telemetry::emit(event);
    }
}

/// Replays a fixed arrival schedule against the fleet: per entry, time
/// advances to the arrival, the request is offered, and admission sheds
/// join the outcome stream; a final drain finishes the backlog.
///
/// # Errors
///
/// Propagates engine errors (see [`FleetEngine::tick`]).
pub fn drive_fleet_open(
    fleet: &mut FleetEngine,
    profile: &LoadProfile,
) -> Result<Vec<FleetOutcome>, ServeError> {
    let mut outcomes = Vec::new();
    for e in &profile.entries {
        outcomes.extend(fleet.tick(e.at)?);
        let req = Request {
            id: e.id,
            sample: e.sample,
            class: e.class,
            tenant: e.tenant,
            arrival: e.at,
            deadline: e.deadline,
        };
        if let Some(rej) = fleet.submit(req, e.at) {
            outcomes.push(FleetOutcome::Rejected(rej));
        }
    }
    outcomes.extend(fleet.drain()?);
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::models;
    use hs_tensor::{Rng, Shape};

    fn tiny_fleet(cfg: FleetConfig) -> FleetEngine {
        let mut rng = Rng::seed_from(7);
        let net = models::lenet(1, 4, 8, 0.5, &mut rng).unwrap();
        let dense = SharedNetwork::new(net.clone());
        let pruned = SharedNetwork::new(net);
        let inputs = Tensor::randn(Shape::d4(6, 1, 8, 8), &mut Rng::seed_from(3));
        FleetEngine::new(cfg, dense, pruned, inputs).unwrap()
    }

    fn req(id: u64, tenant: usize, arrival: Micros) -> Request {
        Request {
            id,
            sample: id as usize,
            class: 0,
            tenant,
            arrival,
            deadline: arrival + 1_000_000,
        }
    }

    #[test]
    fn round_robin_spreads_load_across_replicas() {
        let mut fleet = tiny_fleet(FleetConfig {
            hedge_after: 0,
            ..FleetConfig::default()
        });
        for id in 0..6u64 {
            assert!(fleet.submit(req(id, 0, id), id).is_none());
        }
        let outcomes = fleet.drain().unwrap();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, FleetOutcome::Completed { .. })));
        for k in 0..3 {
            assert_eq!(fleet.replica_summary(k).completed, 2, "replica {k}");
        }
        let s = fleet.summary();
        assert_eq!((s.submitted, s.completed, s.rejected_total()), (6, 6, 0));
    }

    #[test]
    fn tenant_quota_caps_in_flight_requests_per_tenant() {
        let mut fleet = tiny_fleet(FleetConfig {
            tenant_quota: 1,
            hedge_after: 0,
            ..FleetConfig::default()
        });
        assert!(fleet.submit(req(0, 5, 0), 0).is_none());
        let rej = fleet.submit(req(1, 5, 1), 1).expect("over quota");
        match rej.reason {
            FleetReject::TenantQuota {
                tenant,
                in_flight,
                quota,
            } => assert_eq!((tenant, in_flight, quota), (5, 1, 1)),
            other => panic!("expected TenantQuota, got {other:?}"),
        }
        // A different tenant is unaffected.
        assert!(fleet.submit(req(2, 6, 2), 2).is_none());
        // Once tenant 5's request completes, its quota frees up.
        let _ = fleet.drain().unwrap();
        assert!(fleet.submit(req(3, 5, 1_000_000), 1_000_000).is_none());
        let s = fleet.summary();
        assert_eq!(s.rejected_tenant_quota, 1);
    }

    #[test]
    fn crash_ejects_within_budget_and_fails_queued_work_over() {
        use hs_telemetry::faults::{self, Fault, FaultPlan};
        let _guard = crate::fault_test_lock();
        let cfg = FleetConfig {
            probe_every: 1_000,
            suspect_after: 1,
            eject_after: 1,
            hedge_after: 0,
            serve: ServeConfig {
                // Make batches slow enough that replica 1's queue still
                // holds work when the crash lands at the first probe.
                base_cost: 5_000,
                per_item_cost: 1_000,
                linger: 10_000,
                batch_max: 8,
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        };
        let mut fleet = tiny_fleet(cfg);
        faults::arm(FaultPlan {
            faults: vec![Fault {
                kind: "replica_crash".to_string(),
                site: "replica1".to_string(),
                nth: 1,
            }],
        });
        for id in 0..6u64 {
            assert!(fleet.submit(req(id, 0, id), id).is_none());
        }
        let outcomes = fleet.drain().unwrap();
        faults::disarm();
        assert_eq!(fleet.health(1), HealthState::Ejected);
        let s = fleet.summary();
        assert!(s.ejections >= 1);
        assert!(
            s.failovers >= 1,
            "queued work must move off the crashed replica"
        );
        // Nothing lost: every request has exactly one terminal outcome.
        assert_eq!(outcomes.len(), 6);
        assert_eq!(s.completed + s.rejected_total(), 6);
        assert_eq!(fleet.in_flight(), 0);
        // The crashed replica completed nothing.
        assert_eq!(fleet.replica_summary(1).completed, 0);
    }

    #[test]
    fn probe_loss_ejects_without_a_crash_and_the_replica_recovers() {
        use hs_telemetry::faults::{self, FaultPlan};
        let _guard = crate::fault_test_lock();
        let cfg = FleetConfig {
            probe_every: 1_000,
            suspect_after: 1,
            eject_after: 1,
            recover_after: 1,
            hedge_after: 0,
            ..FleetConfig::default()
        };
        let mut fleet = tiny_fleet(cfg);
        // Two consecutive probe rounds of replica 1 return no signal:
        // the prober reads silence as failure and walks the replica to
        // Ejected even though it never went down.
        faults::arm(FaultPlan::parse("probe_loss:replica1:1,probe_loss:replica1:2").unwrap());
        let _ = fleet.tick(1_000).unwrap();
        assert_eq!(fleet.health(1), HealthState::Suspect);
        let _ = fleet.tick(2_000).unwrap();
        assert_eq!(fleet.health(1), HealthState::Ejected);
        // The losses stop; genuine probes of the still-up replica drive
        // Ejected -> Recovered -> Healthy.
        let _ = fleet.tick(3_000).unwrap();
        assert_eq!(fleet.health(1), HealthState::Recovered);
        let _ = fleet.tick(4_000).unwrap();
        faults::disarm();
        assert_eq!(fleet.health(1), HealthState::Healthy);
        let s = fleet.summary();
        assert_eq!((s.ejections, s.recoveries), (1, 1));
    }

    #[test]
    fn with_every_replica_crashed_requests_shed_typed_not_lost() {
        use hs_telemetry::faults::{self, Fault, FaultPlan};
        let _guard = crate::fault_test_lock();
        let cfg = FleetConfig {
            replicas: 2,
            probe_every: 500,
            hedge_after: 0,
            serve: ServeConfig {
                base_cost: 50_000,
                per_item_cost: 1_000,
                linger: 100_000,
                batch_timeout: 1_000_000,
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        };
        let mut fleet = tiny_fleet(cfg);
        faults::arm(FaultPlan {
            faults: (0..2)
                .map(|k| Fault {
                    kind: "replica_crash".to_string(),
                    site: format!("replica{k}"),
                    nth: 1,
                })
                .collect(),
        });
        for id in 0..4u64 {
            assert!(fleet.submit(req(id, 0, id), id).is_none());
        }
        let outcomes = fleet.drain().unwrap();
        // Late arrivals find no routable replica at the door.
        let door = fleet.submit(req(9, 0, 10_000), 10_000).expect("no replica");
        assert_eq!(door.reason, FleetReject::NoReplicaAvailable);
        faults::disarm();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, FleetOutcome::Rejected(_))));
        let s = fleet.summary();
        assert_eq!(s.completed, 0);
        assert_eq!(s.rejected_total(), 5);
        assert_eq!(fleet.in_flight(), 0);
    }

    #[test]
    fn priority_shed_guards_low_classes_only_while_degraded() {
        use hs_telemetry::faults::{self, Fault, FaultPlan};
        let _guard = crate::fault_test_lock();
        let cfg = FleetConfig {
            shed_min_class: 1,
            probe_every: 1_000,
            hedge_after: 0,
            ..FleetConfig::default()
        };
        let mut fleet = tiny_fleet(cfg);
        // Healthy fleet: class 1 is served normally.
        let mut low = req(0, 0, 0);
        low.class = 1;
        assert!(fleet.submit(low, 0).is_none());
        // Crash a replica, let the prober eject it.
        faults::arm(FaultPlan {
            faults: vec![Fault {
                kind: "replica_crash".to_string(),
                site: "replica2".to_string(),
                nth: 1,
            }],
        });
        let _ = fleet.tick(3_000).unwrap();
        faults::disarm();
        assert_eq!(fleet.health(2), HealthState::Ejected);
        // Degraded fleet: class 1 is shed, class 0 still admitted.
        let mut low = req(10, 0, 3_000);
        low.class = 1;
        match fleet
            .submit(low, 3_000)
            .expect("degraded fleet sheds class 1")
        {
            FleetRejection {
                reason: FleetReject::PriorityShed { class, min_class },
                ..
            } => assert_eq!((class, min_class), (1, 1)),
            other => panic!("expected PriorityShed, got {other:?}"),
        }
        assert!(fleet.submit(req(11, 0, 3_000), 3_000).is_none());
        assert_eq!(fleet.summary().rejected_priority, 1);
    }
}
