//! `hs_fleet` — serve a finished HeadStart run on a replicated fleet.
//!
//! ```text
//! hs_fleet --manifest runs/demo --plan load.json --replicas 3 --balancer jsq \
//!          --telemetry fleet.jsonl --report fleet.json
//! ```
//!
//! Same contract as `hs_serve`, scaled out: the manifest's dense/pruned
//! checkpoint pair is loaded once and cloned into `--replicas`
//! independent engines behind the fleet front door (balancer + tenant
//! quotas + priority shedding + hedging + health-checked failover).
//! Replica chaos comes from the seeded fault registry:
//!
//! ```text
//! HS_FAULT=replica_crash:replica1:5 hs_fleet ...   # kill replica 1 at probe 5
//! ```
//!
//! Everything is virtual-time deterministic — two runs with the same
//! manifest, plan, seed, and `HS_FAULT` emit byte-identical telemetry
//! (modulo wall-clock `secs`/`ts` suffixes) and identical reports.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hs_fleet::{drive_fleet_open, BalancerPolicy, FleetConfig, FleetEngine, FleetOutcome};
use hs_runner::report::{write_json, Json};
use hs_runner::ServeManifest;
use hs_serve::{load_with_retry, Plan, RetryPolicy, ServeError, SlotKind};
use hs_telemetry::{Level, TelemetryConfig};
use hs_tensor::Rng;

struct Cli {
    manifest: PathBuf,
    plan: Option<PathBuf>,
    report: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    metrics: Option<PathBuf>,
    log_level: Option<Level>,
    seed: u64,
    cfg: FleetConfig,
}

fn usage() {
    eprintln!(
        "usage: hs_fleet --manifest PATH [--plan PATH.json]\n\
         \x20              [--report PATH.json] [--telemetry PATH.jsonl] [--metrics PATH.prom]\n\
         \x20              [--log-level error|warn|info|debug|trace] [--seed N] [--trace-seed N]\n\
         \x20              [--replicas N] [--balancer round_robin|jsq|p2c]\n\
         \x20              [--probe-every-us N] [--suspect-after N] [--eject-after N]\n\
         \x20              [--recover-after N] [--hedge-after-us N] [--hedge-budget N]\n\
         \x20              [--slow-multiplier N] [--tenant-quota N] [--shed-min-class N]\n\
         \x20              [--queue-capacity N] [--batch-max N] [--linger-us N]\n\
         \x20              [--base-cost-us N] [--per-item-us N] [--batch-timeout-us N]\n\
         \x20              [--breaker-threshold N] [--breaker-cooldown-us N]\n\
         \x20              [--slo-target F] [--slo-window N]\n\
         \n\
         \x20 --manifest PATH    serve manifest (or run directory) from `hs_run --run-dir`\n\
         \x20 --plan PATH        open-loop load plan from `hs_loadgen` (closed plans are\n\
         \x20                    rejected: the fleet driver replays fixed schedules)\n\
         \x20 --replicas N       replica engines behind the front door (default 3)\n\
         \x20 --balancer P       routing policy (default round_robin)\n\
         \x20 --probe-every-us N health-probe cadence on the virtual clock (0 disables)\n\
         \x20 --hedge-after-us N hedge stragglers after this long (0 disables)\n\
         \x20 --hedge-budget N   global hedge-launch budget\n\
         \x20 --tenant-quota N   max in-flight requests per tenant (0 = unlimited)\n\
         \x20 --shed-min-class N while degraded, shed SLO classes >= N at the door\n\
         \x20 HS_FAULT=kind:site[:n],...  arm deterministic fault injection\n\
         \x20   fleet sites: replica_crash|replica_slow|replica_flap|probe_loss at replica<K>"
    );
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        manifest: PathBuf::new(),
        plan: None,
        report: None,
        telemetry: None,
        metrics: None,
        log_level: None,
        seed: 0x4853,
        cfg: FleetConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |what: &str| format!("{flag}: expected {what}, got `{value}`");
        match flag.as_str() {
            "--manifest" => cli.manifest = PathBuf::from(value),
            "--plan" => cli.plan = Some(PathBuf::from(value)),
            "--report" => cli.report = Some(PathBuf::from(value)),
            "--telemetry" => cli.telemetry = Some(PathBuf::from(value)),
            "--metrics" => cli.metrics = Some(PathBuf::from(value)),
            "--log-level" => {
                cli.log_level = Some(Level::parse(value).ok_or_else(|| bad("a log level"))?)
            }
            "--seed" => cli.seed = value.parse().map_err(|_| bad("integer"))?,
            "--trace-seed" => cli.cfg.trace_seed = value.parse().map_err(|_| bad("integer"))?,
            "--replicas" => {
                cli.cfg.replicas = value.parse().map_err(|_| bad("integer"))?;
                if cli.cfg.replicas == 0 {
                    return Err("--replicas: must be at least 1".to_string());
                }
            }
            "--balancer" => {
                cli.cfg.policy =
                    BalancerPolicy::parse(value).ok_or_else(|| bad("round_robin, jsq, or p2c"))?
            }
            "--probe-every-us" => {
                cli.cfg.probe_every = value.parse().map_err(|_| bad("integer"))?
            }
            "--suspect-after" => {
                cli.cfg.suspect_after = value.parse().map_err(|_| bad("integer"))?
            }
            "--eject-after" => cli.cfg.eject_after = value.parse().map_err(|_| bad("integer"))?,
            "--recover-after" => {
                cli.cfg.recover_after = value.parse().map_err(|_| bad("integer"))?
            }
            "--hedge-after-us" => {
                cli.cfg.hedge_after = value.parse().map_err(|_| bad("integer"))?
            }
            "--hedge-budget" => cli.cfg.hedge_budget = value.parse().map_err(|_| bad("integer"))?,
            "--slow-multiplier" => {
                cli.cfg.slow_multiplier = value.parse().map_err(|_| bad("integer"))?
            }
            "--tenant-quota" => cli.cfg.tenant_quota = value.parse().map_err(|_| bad("integer"))?,
            "--shed-min-class" => {
                cli.cfg.shed_min_class = value.parse().map_err(|_| bad("integer"))?
            }
            "--queue-capacity" => {
                cli.cfg.serve.queue_capacity = value.parse().map_err(|_| bad("integer"))?
            }
            "--batch-max" => cli.cfg.serve.batch_max = value.parse().map_err(|_| bad("integer"))?,
            "--linger-us" => cli.cfg.serve.linger = value.parse().map_err(|_| bad("integer"))?,
            "--base-cost-us" => {
                cli.cfg.serve.base_cost = value.parse().map_err(|_| bad("integer"))?
            }
            "--per-item-us" => {
                cli.cfg.serve.per_item_cost = value.parse().map_err(|_| bad("integer"))?
            }
            "--batch-timeout-us" => {
                cli.cfg.serve.batch_timeout = value.parse().map_err(|_| bad("integer"))?
            }
            "--breaker-threshold" => {
                cli.cfg.serve.breaker_threshold = value.parse().map_err(|_| bad("integer"))?
            }
            "--breaker-cooldown-us" => {
                cli.cfg.serve.breaker_cooldown = value.parse().map_err(|_| bad("integer"))?
            }
            "--slo-target" => {
                cli.cfg.serve.slo_target = value.parse().map_err(|_| bad("a float"))?
            }
            "--slo-window" => {
                cli.cfg.serve.slo_window = value.parse().map_err(|_| bad("integer"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if cli.manifest.as_os_str().is_empty() {
        return Err("--manifest is required".to_string());
    }
    Ok(cli)
}

fn serve(cli: &Cli) -> Result<(), ServeError> {
    let manifest_dir = if cli.manifest.is_dir() {
        cli.manifest.clone()
    } else {
        cli.manifest
            .parent()
            .unwrap_or(Path::new("."))
            .to_path_buf()
    };
    let manifest =
        ServeManifest::load(&cli.manifest).map_err(|e| ServeError::BadConfig(e.to_string()))?;
    let mut cfg = cli.cfg;
    cfg.serve.pruned_cost_scale = manifest.pruned_cost_scale();
    hs_telemetry::log(
        Level::Info,
        "fleet",
        format!(
            "fleet of {} over `{}`: balancer {}, probe every {} us, hedge after {} us",
            cfg.replicas.max(1),
            manifest.label,
            cfg.policy.as_str(),
            cfg.probe_every,
            cfg.hedge_after,
        ),
    );

    let ds =
        hs_data::cached(&manifest.data.spec()).map_err(|e| ServeError::BadConfig(e.to_string()))?;
    let inputs = ds.test_images.clone();

    let mut rng = Rng::seed_from(cli.seed);
    let mut clock = 0;
    let policy = RetryPolicy::default();
    let dense = load_with_retry(
        &manifest.dense_path(&manifest_dir),
        SlotKind::Dense,
        policy,
        &mut rng,
        &mut clock,
    )?;
    let pruned_path = match manifest.pruned_compact_path(&manifest_dir) {
        Some(p) if p.exists() => p,
        _ => manifest.pruned_path(&manifest_dir),
    };
    let pruned = load_with_retry(&pruned_path, SlotKind::Pruned, policy, &mut rng, &mut clock)?;

    let profile = match &cli.plan {
        Some(path) => match Plan::load(path)? {
            Plan::Open(profile) => profile,
            Plan::Closed(_) => {
                return Err(ServeError::BadConfig(
                    "hs_fleet replays open-loop plans only; regenerate with \
                     `hs_loadgen --mode open`"
                        .to_string(),
                ))
            }
        },
        None => hs_serve::LoadSpec {
            seed: cli.seed,
            ..hs_serve::LoadSpec::default()
        }
        .open_profile(),
    };

    let mut fleet = FleetEngine::new(cfg, dense, pruned, inputs)?;
    let outcomes = drive_fleet_open(&mut fleet, &profile)?;
    let s = fleet.summary();

    println!(
        "{}: {} requests over {} replicas -> {} completed, {} shed \
         ({} replica, {} tenant_quota, {} priority, {} no_replica) | \
         {} failovers, {} ejections, {} recoveries, {} hedges ({} won)",
        manifest.label,
        s.submitted,
        fleet.replicas(),
        s.completed,
        s.rejected_total(),
        s.rejected_replica,
        s.rejected_tenant_quota,
        s.rejected_priority,
        s.rejected_no_replica,
        s.failovers,
        s.ejections,
        s.recoveries,
        s.hedges_launched,
        s.hedges_won,
    );

    if let Some(path) = &cli.report {
        write_json(path, &report_json(&manifest, &fleet, &outcomes))?;
        hs_telemetry::artifact(&manifest.label, path);
    }
    Ok(())
}

fn report_json(manifest: &ServeManifest, fleet: &FleetEngine, outcomes: &[FleetOutcome]) -> Json {
    let s = fleet.summary();
    let mean_latency = if s.completed > 0 {
        s.total_latency_micros as f64 / s.completed as f64
    } else {
        0.0
    };
    let hedged_completions = outcomes
        .iter()
        .filter(|o| matches!(o, FleetOutcome::Completed { hedged: true, .. }))
        .count();
    let replicas: Vec<Json> = (0..fleet.replicas())
        .map(|k| {
            let r = fleet.replica_summary(k);
            Json::Obj(vec![
                ("replica".into(), Json::num(k as f64)),
                ("health".into(), Json::str(fleet.health(k).as_str())),
                ("submitted".into(), Json::num(r.submitted as f64)),
                ("completed".into(), Json::num(r.completed as f64)),
                ("batches".into(), Json::num(r.batches as f64)),
                ("degrades".into(), Json::num(r.degrades as f64)),
                ("breaker_trips".into(), Json::num(r.breaker_trips as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("label".into(), Json::str(manifest.label.clone())),
        ("replicas".into(), Json::num(fleet.replicas() as f64)),
        ("submitted".into(), Json::num(s.submitted as f64)),
        ("completed".into(), Json::num(s.completed as f64)),
        (
            "completed_hedged".into(),
            Json::num(hedged_completions as f64),
        ),
        (
            "rejected_replica".into(),
            Json::num(s.rejected_replica as f64),
        ),
        (
            "rejected_tenant_quota".into(),
            Json::num(s.rejected_tenant_quota as f64),
        ),
        (
            "rejected_priority".into(),
            Json::num(s.rejected_priority as f64),
        ),
        (
            "rejected_no_replica".into(),
            Json::num(s.rejected_no_replica as f64),
        ),
        ("failovers".into(), Json::num(s.failovers as f64)),
        ("failover_sheds".into(), Json::num(s.failover_sheds as f64)),
        ("ejections".into(), Json::num(s.ejections as f64)),
        ("recoveries".into(), Json::num(s.recoveries as f64)),
        ("probes".into(), Json::num(s.probes as f64)),
        (
            "hedges_launched".into(),
            Json::num(s.hedges_launched as f64),
        ),
        ("hedges_won".into(), Json::num(s.hedges_won as f64)),
        ("hedges_lost".into(), Json::num(s.hedges_lost as f64)),
        (
            "hedges_rejected".into(),
            Json::num(s.hedges_rejected as f64),
        ),
        (
            "mean_latency_micros".into(),
            Json::num((mean_latency * 1e3).round() / 1e3),
        ),
        (
            "max_latency_micros".into(),
            Json::num(s.max_latency_micros as f64),
        ),
        ("replica_stats".into(), Json::Arr(replicas)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if let Err(e) = hs_runner::arm_from_env() {
        eprintln!("hs_fleet: {e}");
        return ExitCode::FAILURE;
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("hs_fleet: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = hs_telemetry::configure(&TelemetryConfig {
        stderr_level: cli.log_level,
        jsonl: cli.telemetry.clone(),
    }) {
        eprintln!("hs_fleet: telemetry: {e}");
        return ExitCode::FAILURE;
    }
    let result = serve(&cli);
    hs_telemetry::flush_metrics();
    if let Some(path) = &cli.metrics {
        if let Err(e) = hs_telemetry::io::atomic_write_as(
            path,
            "metrics",
            hs_telemetry::metrics::render_prometheus().as_bytes(),
        ) {
            eprintln!("hs_fleet: metrics: {e}");
        }
    }
    hs_telemetry::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hs_fleet: {e}");
            ExitCode::FAILURE
        }
    }
}
