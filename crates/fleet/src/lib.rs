//! `hs-fleet`: replicated serving over HeadStart checkpoints with
//! health-checked load balancing, hedged retries, and a deterministic
//! replica-chaos story.
//!
//! One [`ServeEngine`](hs_serve::ServeEngine) keeps answering under
//! overload; this crate keeps answering when whole *replicas* die. It
//! stands N independent serve engines behind a single front door:
//!
//! ```text
//!             ┌──────────────────────────── hs-fleet ────────────────────────────┐
//!             │ fleet admission          balancer             replicas           │
//! requests →  │  priority shed     →  round_robin | jsq  →  ┌ replica0: queue…┐  │ → outcomes
//!             │  tenant quotas        | p2c                 ├ replica1: queue…┤  │
//!             │                                             └ replica2: queue…┘  │
//!             │         ▲                                        │               │
//!             │   health prober  ←──── probes on the virtual clock               │
//!             │   (healthy → suspect → ejected → recovered; ejection             │
//!             │    evicts + fails over)        hedger: slow request? launch      │
//!             │                                a copy, first outcome wins        │
//!             └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Everything runs in virtual time against the workspace's seeded
//! fault registry, so a three-replica chaos run — crash one replica
//! mid-load, slow another — replays byte-identically: same plan, same
//! seed, same `HS_FAULT` ⇒ the same shed/latency/failover telemetry.
//! The invariant the whole crate is built around: **every accepted
//! request gets exactly one terminal outcome** — a completion or a
//! typed shed — no matter which replicas die when.
//!
//! Modules: [`engine`] (front door, failover, hedging), [`health`]
//! (probe-driven replica state machine), [`balancer`] (routing
//! policies).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balancer;
pub mod engine;
pub mod health;

/// Serializes tests (across this crate) that arm the process-global
/// fault registry, so parallel test threads never see each other's plan.
#[cfg(test)]
pub(crate) fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

pub use balancer::{Balancer, BalancerPolicy};
pub use engine::{
    drive_fleet_open, FleetConfig, FleetEngine, FleetOutcome, FleetReject, FleetRejection,
    FleetSummary,
};
pub use health::{HealthState, HealthTracker};
