//! Deterministic replica health checking.
//!
//! The fleet probes every replica on a fixed virtual-clock cadence. A
//! probe succeeds when the replica answers (it is not crashed or
//! flapped down) and fails otherwise. Each replica's probe history
//! drives a four-state machine:
//!
//! ```text
//!            fails >= suspect_after        fails >= eject_after
//!  Healthy ──────────────────────> Suspect ────────────────────> Ejected
//!     ^                              │  ok                          │
//!     │                              └──────> Healthy               │ oks >= recover_after
//!     │          oks >= recover_after                               v
//!     └──────────────────────────────────────────────────────── Recovered
//!                               (a failure while Recovered → Suspect)
//! ```
//!
//! `Healthy`, `Suspect`, and `Recovered` replicas are routable;
//! `Ejected` replicas are not — ejection evicts their queued requests
//! so the fleet can fail them over. Every transition emits one
//! `replica_health` telemetry event, so the failover timeline in a
//! chaos run is reconstructable from the JSONL stream alone.

use hs_serve::Micros;
use hs_telemetry::{trace, Event, EventKind, Level, TraceCtx};

/// A replica's health as seen by the prober.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Probes pass; full member of the routable set.
    Healthy,
    /// Recent probe failures; still routable (the fleet gives it the
    /// benefit of the doubt until `eject_after` more failures).
    Suspect,
    /// Probes kept failing; not routable, queued work was evicted.
    Ejected,
    /// Probes pass again after an ejection; routable, one failure away
    /// from `Suspect` until it re-earns `Healthy`.
    Recovered,
}

impl HealthState {
    /// Stable name used in telemetry fields.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Ejected => "ejected",
            HealthState::Recovered => "recovered",
        }
    }

    /// May the balancer route new work here?
    pub fn routable(self) -> bool {
        !matches!(self, HealthState::Ejected)
    }
}

/// The per-replica probe state machine.
#[derive(Debug)]
pub struct HealthTracker {
    replica: usize,
    state: HealthState,
    suspect_after: usize,
    eject_after: usize,
    recover_after: usize,
    /// Consecutive probe failures in the current phase.
    fails: usize,
    /// Consecutive probe successes in the current phase.
    oks: usize,
    trace: TraceCtx,
    seq: u64,
}

impl HealthTracker {
    /// A healthy tracker for `replica`. Thresholds are clamped to a
    /// minimum of 1 so the machine always makes progress.
    pub fn new(
        replica: usize,
        suspect_after: usize,
        eject_after: usize,
        recover_after: usize,
        trace_seed: u64,
    ) -> HealthTracker {
        HealthTracker {
            replica,
            state: HealthState::Healthy,
            suspect_after: suspect_after.max(1),
            eject_after: eject_after.max(1),
            recover_after: recover_after.max(1),
            fails: 0,
            oks: 0,
            trace: trace::unit_ctx(trace_seed, "fleet_health", replica),
            seq: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Feeds one probe result observed at virtual time `at`. Returns
    /// `Some((from, to))` when the probe caused a transition (already
    /// emitted as a `replica_health` event).
    pub fn observe(&mut self, ok: bool, at: Micros) -> Option<(HealthState, HealthState)> {
        let next = match (self.state, ok) {
            (HealthState::Healthy, true) => {
                self.fails = 0;
                None
            }
            (HealthState::Healthy, false) => {
                self.fails += 1;
                (self.fails >= self.suspect_after).then_some(HealthState::Suspect)
            }
            (HealthState::Suspect, true) => Some(HealthState::Healthy),
            (HealthState::Suspect, false) => {
                self.fails += 1;
                (self.fails >= self.eject_after).then_some(HealthState::Ejected)
            }
            (HealthState::Ejected, true) => {
                self.oks += 1;
                (self.oks >= self.recover_after).then_some(HealthState::Recovered)
            }
            (HealthState::Ejected, false) => {
                self.oks = 0;
                None
            }
            (HealthState::Recovered, true) => {
                self.oks += 1;
                (self.oks >= self.recover_after).then_some(HealthState::Healthy)
            }
            (HealthState::Recovered, false) => Some(HealthState::Suspect),
        }?;
        let from = self.state;
        self.state = next;
        self.fails = 0;
        self.oks = 0;
        let level = match next {
            HealthState::Suspect | HealthState::Ejected => Level::Warn,
            HealthState::Healthy | HealthState::Recovered => Level::Info,
        };
        let ctx = self.trace.child(self.seq);
        self.seq += 1;
        hs_telemetry::emit(
            Event::new(EventKind::ReplicaHealth, level, "fleet/health")
                .message(format!(
                    "replica {} {} -> {}",
                    self.replica,
                    from.as_str(),
                    next.as_str()
                ))
                .field("replica", self.replica)
                .field("from", from.as_str())
                .field("to", next.as_str())
                .field("at", at)
                .traced(&ctx),
        );
        Some((from, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transitions(results: &[bool], suspect: usize, eject: usize, recover: usize) -> Vec<String> {
        let mut h = HealthTracker::new(0, suspect, eject, recover, 7);
        results
            .iter()
            .enumerate()
            .filter_map(|(i, ok)| h.observe(*ok, i as Micros))
            .map(|(from, to)| format!("{}->{}", from.as_str(), to.as_str()))
            .collect()
    }

    #[test]
    fn walks_the_full_cycle() {
        let seen = transitions(&[true, false, false, true, true, true, true], 1, 1, 2);
        assert_eq!(
            seen,
            [
                "healthy->suspect",
                "suspect->ejected",
                "ejected->recovered", // after 2 oks
                "recovered->healthy", // after 2 more oks
            ]
        );
    }

    #[test]
    fn one_good_probe_clears_suspicion() {
        let seen = transitions(&[false, true, false, false, false], 1, 3, 1);
        assert_eq!(
            seen,
            ["healthy->suspect", "suspect->healthy", "healthy->suspect"]
        );
    }

    #[test]
    fn a_failure_while_recovered_demotes_to_suspect() {
        let mut h = HealthTracker::new(3, 1, 1, 1, 7);
        h.observe(false, 0); // healthy -> suspect
        h.observe(false, 1); // suspect -> ejected
        assert_eq!(h.state(), HealthState::Ejected);
        assert!(!h.state().routable());
        h.observe(true, 2); // ejected -> recovered
        assert_eq!(h.state(), HealthState::Recovered);
        assert!(h.state().routable());
        assert_eq!(
            h.observe(false, 3),
            Some((HealthState::Recovered, HealthState::Suspect))
        );
    }

    #[test]
    fn a_crashed_replica_stays_ejected() {
        let mut h = HealthTracker::new(1, 2, 2, 1, 7);
        let mut changed = 0;
        for i in 0..20 {
            if h.observe(false, i).is_some() {
                changed += 1;
            }
        }
        assert_eq!(h.state(), HealthState::Ejected);
        assert_eq!(
            changed, 2,
            "healthy->suspect, suspect->ejected, then stable"
        );
    }
}
