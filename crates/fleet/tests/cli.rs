//! `hs_fleet` CLI contract tests: input validation is typed, line-
//! anchored, and matches `hs_run --workers` parity (zero replicas are
//! rejected at parse time, not silently clamped).

use std::process::Command;

fn hs_fleet(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hs_fleet"))
        .args(args)
        .output()
        .expect("spawn hs_fleet")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = hs_fleet(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage: hs_fleet"), "stderr: {text}");
    assert!(
        text.contains("probe_loss"),
        "usage must advertise the probe_loss fault kind: {text}"
    );
}

#[test]
fn zero_replicas_are_rejected_with_a_typed_error() {
    let out = hs_fleet(&["--manifest", "nowhere", "--replicas", "0"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("hs_fleet: --replicas: must be at least 1"),
        "stderr: {text}"
    );
}

#[test]
fn non_integer_replicas_name_the_flag_and_the_value() {
    let out = hs_fleet(&["--manifest", "nowhere", "--replicas", "three"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("--replicas: expected integer, got `three`"),
        "stderr: {text}"
    );
}

#[test]
fn a_bad_fault_spec_fails_at_startup_with_a_suggestion() {
    let out = Command::new(env!("CARGO_BIN_EXE_hs_fleet"))
        .args(["--manifest", "nowhere"])
        .env("HS_FAULT", "probe_los:replica1:2")
        .output()
        .expect("spawn hs_fleet");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(
        text.contains("did you mean `probe_loss`?"),
        "stderr: {text}"
    );
}
