#!/bin/sh
# One-core endgame: full fig6 (analytic, fast) + --quick smoke passes of
# the training-heavy remaining experiments.
set -e
mkdir -p results
cargo run --release -p hs-bench --bin fig6_inference_speedup \
    2>results/fig6_inference_speedup.log | tee results/fig6_inference_speedup.txt
for exp in table4_resnet_blocks table2_vgg_cub table3_vgg_cifar ablation_reward; do
    echo "=== $exp (--quick) ==="
    cargo run --release -p hs-bench --bin "$exp" -- --quick \
        2>results/$exp.log | tee results/$exp.txt
done
echo QUICK_REMAINING_DONE
