//! **headstart** — a full reproduction of *"HeadStart: Enforcing Optimal
//! Inceptions in Pruning Deep Neural Networks for Efficient Inference on
//! GPGPUs"* (Lin, Lu, Wei & Li, DAC 2019), built from scratch in Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`telemetry`] — zero-dependency structured tracing and metrics:
//!   nested spans, a process-global counter/gauge/histogram registry,
//!   and JSONL / Prometheus-text sinks;
//! * [`tensor`] — dense f32 tensors, matmul, im2col, seeded RNG;
//! * [`nn`] — layers, backprop, optimizers, VGG/ResNet model zoo,
//!   parameter/FLOP accounting, channel masking and surgery;
//! * [`data`] — synthetic CIFAR-100 / CUB-200 style dataset generators;
//! * [`pruning`] — the baseline criteria (Li'17, APoZ, entropy, random,
//!   ThiNet, AutoPruner) and whole-model pruning drivers;
//! * [`core`] — HeadStart itself: head-start policy networks, the
//!   REINFORCE loop with self-critical baseline, per-layer and per-block
//!   pruners;
//! * [`coord`] — deterministic sharded candidate evaluation: a
//!   coordinator that fans each episode's action batch out across worker
//!   threads and folds rewards back in schedule order, bit-identical to
//!   serial execution for any worker count;
//! * [`gpusim`] — a roofline latency model of the paper's four inference
//!   platforms;
//! * [`runner`] — the config-driven end-to-end pipeline (dataset →
//!   pre-train or checkpoint → prune → fine-tune → eval → JSON artifact)
//!   that every experiment binary is built on;
//! * [`serve`] — the deploy-time serving stack over a run's dense/pruned
//!   checkpoint pair: bounded admission with typed load shedding,
//!   deadline-aware micro-batching, a circuit breaker, and graceful
//!   degradation that hot-swaps to the pruned inception under overload;
//! * [`fleet`] — replicated serving: N serve engines behind a
//!   health-checked load balancer with per-tenant quotas, priority
//!   shedding, hedged retries under a global budget, and deterministic
//!   failover when replica-scoped faults kill instances mid-run;
//! * [`obs`] — offline analysis over the deterministic telemetry JSONL
//!   stream: causal trace timelines, serving reports with SLO burn
//!   accounting, run-to-run metric diffs, and the `bench-check`
//!   regression gate over `BENCH_kernels.json`;
//! * [`chaos`] — seeded chaos campaigns over the pipeline, coordinator,
//!   and serving fleet: fault schedules sampled from the registered
//!   kind×site vocabulary, global invariant oracles (completion, bit
//!   parity, checkpoint integrity, ejection liveness, deadlines,
//!   request conservation, telemetry cleanliness), and a
//!   delta-debugging shrinker that reduces any failing schedule to a
//!   minimal `HS_FAULT` repro.
//!
//! # Quickstart
//!
//! ```
//! use headstart::core::{HeadStartConfig, LayerPruner};
//! use headstart::data::{Dataset, DatasetSpec};
//! use headstart::nn::{models, surgery};
//! use headstart::tensor::Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny synthetic task and a small VGG.
//! let ds = Dataset::generate(
//!     &DatasetSpec::cifar_like().classes(4).train_per_class(6).test_per_class(3).image_size(8),
//! )?;
//! let mut rng = Rng::seed_from(1);
//! let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng)?;
//!
//! // Learn an inception for the first conv layer and make it physical.
//! let cfg = HeadStartConfig::new(2.0).max_episodes(6).eval_images(12);
//! let decision = LayerPruner::new(cfg).prune(&mut net, 0, &ds, &mut rng)?;
//! let conv = net.conv_indices()[0];
//! surgery::prune_feature_maps(&mut net, conv, &decision.keep)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use hs_chaos as chaos;
pub use hs_coord as coord;
pub use hs_core as core;
pub use hs_data as data;
pub use hs_fleet as fleet;
pub use hs_gpusim as gpusim;
pub use hs_nn as nn;
pub use hs_obs as obs;
pub use hs_pruning as pruning;
pub use hs_runner as runner;
pub use hs_serve as serve;
pub use hs_telemetry as telemetry;
pub use hs_tensor as tensor;
