//! `headstart` — command-line front end for the reproduction.
//!
//! ```text
//! headstart train   --model vgg11 --dataset cifar --epochs 14 --out model.hsck
//! headstart prune   --model model.hsck --dataset cifar --sp 2 --out pruned.hsck
//! headstart info    --model pruned.hsck [--input-size 16]
//! headstart estimate --model pruned.hsck --input-size 16
//! ```
//!
//! All randomness is seeded (`--seed`, default 42), so runs reproduce.

use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

use headstart::core::{HeadStartConfig, HeadStartPruner};
use headstart::data::{cached, DatasetSpec};
use headstart::gpusim::{devices, estimate};
use headstart::nn::accounting::analyze;
use headstart::nn::optim::Sgd;
use headstart::nn::{checkpoint, models, train, Network};
use headstart::pruning::driver::FineTune;
use headstart::tensor::Rng;

const USAGE: &str = "\
usage: headstart <command> [--flag value]...

commands:
  train      train a model on a synthetic dataset and save a checkpoint
             --model vgg11|vgg16|resnet20|resnet38|lenet|alexnet (default vgg11)
             --dataset cifar|cub (default cifar)
             --width F (default 0.25)   --epochs N (default 14)
             --out PATH (default model.hsck)   --seed N (default 42)
  prune      HeadStart-prune a checkpointed model and save the result
             --model PATH (required)    --dataset cifar|cub (default cifar)
             --sp F (default 2.0)       --episodes N (default 100)
             --finetune N (default 3)   --out PATH (default pruned.hsck)
             --seed N (default 42)
  info       print a checkpoint's architecture, parameters and MACs
             --model PATH (required)    --input-size N (default 16)
  estimate   fps of a checkpointed model on the four simulated platforms
             --model PATH (required)    --input-size N (default 16)
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn dataset_spec(name: &str) -> Result<DatasetSpec, String> {
    match name {
        "cifar" => Ok(DatasetSpec::cifar_like()),
        "cub" => Ok(DatasetSpec::cub_like()),
        other => Err(format!("unknown dataset `{other}` (use cifar or cub)")),
    }
}

fn build_model(
    name: &str,
    classes: usize,
    input_size: usize,
    width: f32,
    rng: &mut Rng,
) -> Result<Network, Box<dyn Error>> {
    Ok(match name {
        "vgg11" => models::vgg11(3, classes, input_size, width, rng)?,
        "vgg16" => models::vgg16(3, classes, input_size, width, rng)?,
        "resnet20" => models::resnet_cifar(3, 3, classes, width, rng)?,
        "resnet38" => models::resnet_cifar(6, 3, classes, width, rng)?,
        "lenet" => models::lenet(3, classes, input_size, width, rng)?,
        "alexnet" => models::alexnet(3, classes, input_size, width, rng)?,
        other => return Err(format!("unknown model `{other}`").into()),
    })
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let seed: u64 = flag(flags, "seed", "42").parse()?;
    let epochs: usize = flag(flags, "epochs", "14").parse()?;
    let width: f32 = flag(flags, "width", "0.25").parse()?;
    let out = flag(flags, "out", "model.hsck");
    let ds = cached(&dataset_spec(flag(flags, "dataset", "cifar"))?)?;
    let mut rng = Rng::seed_from(seed);
    let mut net = build_model(
        flag(flags, "model", "vgg11"),
        ds.num_classes(),
        ds.image_size(),
        width,
        &mut rng,
    )?;
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    for epoch in 0..epochs {
        let stats = train::train_epoch(
            &mut net,
            &mut opt,
            &ds.train_images,
            &ds.train_labels,
            32,
            &mut rng,
        )?;
        println!(
            "epoch {epoch:3}: loss {:.4} train-acc {:.4}",
            stats.loss, stats.accuracy
        );
    }
    let acc = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
    println!("test accuracy: {:.2}%", acc * 100.0);
    checkpoint::save(&net, out)?;
    println!("saved checkpoint to {out}");
    Ok(())
}

fn cmd_prune(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = flags.get("model").ok_or("prune needs --model PATH")?;
    let seed: u64 = flag(flags, "seed", "42").parse()?;
    let sp: f32 = flag(flags, "sp", "2.0").parse()?;
    let episodes: usize = flag(flags, "episodes", "100").parse()?;
    let finetune: usize = flag(flags, "finetune", "3").parse()?;
    let out = flag(flags, "out", "pruned.hsck");
    let ds = cached(&dataset_spec(flag(flags, "dataset", "cifar"))?)?;
    let mut net = checkpoint::load(model)?;
    let mut rng = Rng::seed_from(seed);
    let before = analyze(&net, ds.channels(), ds.image_size())?;
    let cfg = HeadStartConfig::new(sp).max_episodes(episodes);
    let ft = FineTune {
        epochs: finetune,
        ..FineTune::default()
    };
    let (outcome, _) = HeadStartPruner::new(cfg, ft).prune_model(&mut net, &ds, &mut rng)?;
    for t in &outcome.traces {
        println!(
            "conv{:2}: {:3} -> {:3} maps, inception {:.2}%, fine-tuned {:.2}%",
            t.conv_ordinal,
            t.maps_before,
            t.maps_after,
            t.inception_accuracy * 100.0,
            t.finetuned_accuracy * 100.0
        );
    }
    println!(
        "pruned: {:.4}M -> {:.4}M params ({:.1}%), final accuracy {:.2}%",
        before.params_millions(),
        outcome.cost.params_millions(),
        100.0 * outcome.cost.total_params as f64 / before.total_params as f64,
        outcome.final_accuracy * 100.0
    );
    checkpoint::save(&net, out)?;
    println!("saved pruned checkpoint to {out}");
    Ok(())
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = flags.get("model").ok_or("info needs --model PATH")?;
    let input_size: usize = flag(flags, "input-size", "16").parse()?;
    let net = checkpoint::load(model)?;
    println!("{model}: {} nodes", net.len());
    print!("{}", headstart::nn::summary::render(&net, 3, input_size)?);
    Ok(())
}

fn cmd_estimate(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let model = flags.get("model").ok_or("estimate needs --model PATH")?;
    let input_size: usize = flag(flags, "input-size", "16").parse()?;
    let net = checkpoint::load(model)?;
    println!("{:<16} {:>12} {:>14}", "DEVICE", "fps", "latency (ms)");
    for device in devices::all() {
        let report = estimate(&device, &net, 3, input_size)?;
        println!(
            "{:<16} {:>12.1} {:>14.3}",
            device.name,
            report.fps(),
            report.total_seconds * 1e3
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "train" => cmd_train(&flags),
        "prune" => cmd_prune(&flags),
        "info" => cmd_info(&flags),
        "estimate" => cmd_estimate(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
