//! Crash/resume parity tests: a journaled run that is killed (by an
//! injected fault) and resumed must produce results **bit-identical** to
//! the same seeded run left uninterrupted — same inception masks, same
//! accuracies, same final model bytes. Also covers checkpoint-corruption
//! recovery (rewind / re-pretrain) and transient-I/O retry.
//!
//! The fault registry is process-global, so every test here serializes
//! on one mutex — an armed `kill_after` from one test must never fire
//! inside another's pipeline.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use headstart::runner::{
    prepare, resume_run, run, BaselineKind, Budget, Method, ModelChoice, ModelKind, PipelineReport,
    RunnerConfig, RunnerError, FINAL_CHECKPOINT,
};
use headstart::telemetry::faults::{arm, disarm, FaultPlan};

/// Serializes the whole file: pipelines cross fault-injection sites, and
/// the registry is process-global.
static FAULTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// A fast two-conv configuration (LeNet, smoke budget) so each test's
/// multiple pipeline runs stay cheap.
fn lenet_config(label: &str) -> RunnerConfig {
    let mut cfg = RunnerConfig::new(label);
    cfg.model = ModelChoice::new(ModelKind::LeNet, 1.0);
    cfg.budget = Budget::smoke();
    cfg
}

fn flip_byte(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(path, bytes).expect("write corrupted checkpoint");
}

/// Bit-exact report parity: accuracies compared as bits, traces as
/// values (every field of every unit).
fn assert_parity(reference: &PipelineReport, resumed: &PipelineReport) {
    assert_eq!(
        reference.original_accuracy.to_bits(),
        resumed.original_accuracy.to_bits(),
        "original accuracy diverged"
    );
    assert_eq!(
        reference.final_accuracy.to_bits(),
        resumed.final_accuracy.to_bits(),
        "final accuracy diverged"
    );
    assert_eq!(reference.traces, resumed.traces, "per-unit traces diverged");
    assert_eq!(
        reference.final_cost.total_params,
        resumed.final_cost.total_params
    );
    assert_eq!(
        reference.final_cost.total_flops,
        resumed.final_cost.total_flops
    );
}

#[test]
fn journaled_run_matches_plain_run() {
    let _guard = lock();
    disarm();
    let plain = run(&lenet_config("cr-plain")).expect("plain run");

    let dir = tmp_dir("cr-journaled");
    let mut cfg = lenet_config("cr-plain");
    cfg.run_dir = Some(dir.clone());
    let journaled = run(&cfg).expect("journaled run");

    assert_parity(&plain, &journaled);
    assert!(dir.join(FINAL_CHECKPOINT).exists(), "final checkpoint");
    assert!(dir.join("run.journal.json").exists(), "journal");
    assert!(dir.join("unit-00.hsck").exists(), "per-unit checkpoint");
}

#[test]
fn killed_run_resumes_bit_identically() {
    let _guard = lock();
    disarm();
    let ref_dir = tmp_dir("cr-kill-ref");
    let mut ref_cfg = lenet_config("cr-kill");
    ref_cfg.run_dir = Some(ref_dir.clone());
    let reference = run(&ref_cfg).expect("reference run");

    // Same seeded run, killed right after the first pruned unit.
    let dir = tmp_dir("cr-kill");
    let mut cfg = lenet_config("cr-kill");
    cfg.run_dir = Some(dir.clone());
    arm(FaultPlan::parse("kill_after:prune_unit:1").unwrap());
    match run(&cfg) {
        Err(RunnerError::InjectedCrash { site }) => assert_eq!(site, "prune_unit"),
        other => panic!("expected injected crash, got {other:?}"),
    }
    disarm();
    assert!(
        dir.join("unit-00.hsck").exists() && !dir.join(FINAL_CHECKPOINT).exists(),
        "crash left exactly the first unit behind"
    );

    let resumed = resume_run(&dir).expect("resume");
    assert_parity(&reference, &resumed);
    assert_eq!(
        std::fs::read(ref_dir.join(FINAL_CHECKPOINT)).unwrap(),
        std::fs::read(dir.join(FINAL_CHECKPOINT)).unwrap(),
        "final model bytes diverged"
    );
}

#[test]
fn corrupt_unit_checkpoint_rewinds_and_redoes_the_unit() {
    let _guard = lock();
    disarm();
    let ref_dir = tmp_dir("cr-rewind-ref");
    let mut ref_cfg = lenet_config("cr-rewind");
    ref_cfg.run_dir = Some(ref_dir.clone());
    let reference = run(&ref_cfg).expect("reference run");

    // Kill after the second unit, then corrupt that unit's checkpoint:
    // resume must rewind to unit 0 and redo unit 1 identically.
    let dir = tmp_dir("cr-rewind");
    let mut cfg = lenet_config("cr-rewind");
    cfg.run_dir = Some(dir.clone());
    cfg.telemetry = Some(dir.join("resume.jsonl"));
    arm(FaultPlan::parse("kill_after:prune_unit:2").unwrap());
    assert!(matches!(run(&cfg), Err(RunnerError::InjectedCrash { .. })));
    disarm();
    flip_byte(&dir.join("unit-01.hsck"));

    let resumed = resume_run(&dir).expect("resume past corrupt checkpoint");
    assert_parity(&reference, &resumed);
    assert_eq!(
        std::fs::read(ref_dir.join(FINAL_CHECKPOINT)).unwrap(),
        std::fs::read(dir.join(FINAL_CHECKPOINT)).unwrap(),
        "final model bytes diverged after rewind"
    );
    let stream = std::fs::read_to_string(dir.join("resume.jsonl")).expect("telemetry");
    assert!(
        stream.contains("\"recovery\"") && stream.contains("rewind_unit"),
        "recovery event recorded:\n{stream}"
    );
    assert!(stream.contains("\"resume\""), "resume event recorded");
}

#[test]
fn corrupt_pretrained_checkpoint_triggers_re_pretraining() {
    let _guard = lock();
    disarm();
    let dir = tmp_dir("cr-pretrained");
    let mut cfg = lenet_config("cr-pretrained");
    cfg.checkpoint = Some(dir.join("pretrained.hsck"));

    let first = prepare(&cfg).expect("first prepare");
    flip_byte(&dir.join("pretrained.hsck"));
    let second = prepare(&cfg).expect("prepare past corrupt checkpoint");

    // Re-pretraining is seeded, so the recovered model is bit-identical.
    assert_eq!(
        first.original_accuracy.to_bits(),
        second.original_accuracy.to_bits()
    );
    assert!(
        second.stages.iter().any(|s| s.name.contains("pretrain")),
        "recovery went through pre-training: {:?}",
        second.stages
    );
}

#[test]
fn baseline_runs_resume_bit_identically() {
    let _guard = lock();
    disarm();
    let method = Method::Baseline {
        kind: BaselineKind::L1,
        keep_ratio: 0.5,
    };
    let ref_dir = tmp_dir("cr-l1-ref");
    let mut ref_cfg = lenet_config("cr-l1");
    ref_cfg.method = method.clone();
    ref_cfg.run_dir = Some(ref_dir.clone());
    let reference = run(&ref_cfg).expect("reference baseline run");

    let dir = tmp_dir("cr-l1");
    let mut cfg = lenet_config("cr-l1");
    cfg.method = method;
    cfg.run_dir = Some(dir.clone());
    arm(FaultPlan::parse("kill_after:prune_unit:1").unwrap());
    assert!(matches!(run(&cfg), Err(RunnerError::InjectedCrash { .. })));
    disarm();

    let resumed = resume_run(&dir).expect("resume baseline");
    assert_parity(&reference, &resumed);
    assert_eq!(
        std::fs::read(ref_dir.join(FINAL_CHECKPOINT)).unwrap(),
        std::fs::read(dir.join(FINAL_CHECKPOINT)).unwrap()
    );
}

#[test]
fn transient_io_faults_are_retried_to_completion() {
    let _guard = lock();
    disarm();
    let plain = run(&lenet_config("cr-flaky")).expect("plain run");

    let dir = tmp_dir("cr-flaky");
    let mut cfg = lenet_config("cr-flaky");
    cfg.run_dir = Some(dir.clone());
    arm(FaultPlan::parse("io_flaky:checkpoint:1,io_flaky:journal:1").unwrap());
    let flaky = run(&cfg).expect("transient faults are retried");
    disarm();
    assert_parity(&plain, &flaky);
    assert!(dir.join(FINAL_CHECKPOINT).exists());
}

#[test]
fn resume_without_a_journal_fails_with_context() {
    let _guard = lock();
    disarm();
    let dir = tmp_dir("cr-nojournal");
    match resume_run(&dir) {
        Err(RunnerError::Journal(detail)) => {
            assert!(
                detail.contains("run.journal.json"),
                "names the file: {detail}"
            )
        }
        other => panic!("expected journal error, got {other:?}"),
    }
}
