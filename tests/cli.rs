//! End-to-end test of the `headstart` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_headstart"))
}

#[test]
fn cli_help_lists_commands() {
    let out = bin().arg("help").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["train", "prune", "info", "estimate"] {
        assert!(text.contains(cmd), "help missing `{cmd}`");
    }
}

#[test]
fn cli_rejects_unknown_command_and_bad_flags() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let out = bin().args(["train", "--epochs"]).output().expect("run");
    assert!(!out.status.success());
    let out = bin().args(["info"]).output().expect("run");
    assert!(!out.status.success(), "info without --model must fail");
}

#[test]
fn cli_train_prune_info_estimate_pipeline() {
    let dir = std::env::temp_dir().join("hs_cli_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let model = dir.join("model.hsck");
    let pruned = dir.join("pruned.hsck");

    // Train (minimal budget: the test checks plumbing, not accuracy).
    let out = bin()
        .args([
            "train",
            "--model",
            "lenet",
            "--epochs",
            "1",
            "--seed",
            "7",
            "--out",
            model.to_str().expect("utf8"),
        ])
        .output()
        .expect("train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // Info.
    let out = bin()
        .args(["info", "--model", model.to_str().expect("utf8")])
        .output()
        .expect("info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total:"), "info output: {text}");

    // Prune with a tiny RL budget.
    let out = bin()
        .args([
            "prune",
            "--model",
            model.to_str().expect("utf8"),
            "--sp",
            "2",
            "--episodes",
            "3",
            "--finetune",
            "0",
            "--seed",
            "7",
            "--out",
            pruned.to_str().expect("utf8"),
        ])
        .output()
        .expect("prune");
    assert!(
        out.status.success(),
        "prune failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(pruned.exists());

    // Estimate on the simulated devices.
    let out = bin()
        .args(["estimate", "--model", pruned.to_str().expect("utf8")])
        .output()
        .expect("estimate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("GTX 1080Ti") && text.contains("Cortex-A57"),
        "{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
