//! Sharded-evaluation parity: `--workers N` must be invisible in every
//! output byte.
//!
//! The coordinator (`hs-coord`) shards each episode's candidate batch
//! across worker threads but folds rewards back in schedule order, so a
//! seeded run must produce **byte-identical** journals and final
//! checkpoints for any worker count — including when a worker is killed
//! mid-episode and its items are reassigned. These tests pin that, plus
//! the one thing that *is* allowed to differ: wall-clock, which a
//! ≥4-worker prune stage must actually improve.
//!
//! The fault registry is process-global, so every test here serializes
//! on one mutex (the same discipline as `crash_resume.rs`).

use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;

use headstart::coord::Coordinator;
use headstart::core::{
    EngineObserver, GuardAction, GuardReason, HeadStartConfig, LayerPruner, RecoveryEvent,
    SerialExecutor,
};
use headstart::data::{Dataset, DatasetSpec};
use headstart::nn::models;
use headstart::runner::{
    run, BaselineKind, Budget, Method, ModelChoice, ModelKind, RunnerConfig, FINAL_CHECKPOINT,
};
use headstart::telemetry::faults::{arm, disarm, FaultPlan};
use headstart::tensor::Rng;

/// Serializes the whole file: the fault registry is process-global, and
/// the wall-clock test wants the process to itself.
static FAULTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULTS.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

/// A fast two-conv configuration (LeNet, smoke budget) shared by the
/// parity runs.
fn lenet_config(label: &str, workers: usize) -> RunnerConfig {
    let mut cfg = RunnerConfig::new(label);
    cfg.model = ModelChoice::new(ModelKind::LeNet, 1.0);
    cfg.budget = Budget::smoke();
    cfg.workers = workers;
    cfg
}

/// Runs the same seeded config at two worker counts and asserts the
/// journal (modulo its own `workers` echo) and the final checkpoint are
/// byte-identical.
fn assert_worker_count_invisible(method: Method, label: &str) {
    let dir1 = tmp_dir(&format!("{label}-w1"));
    let dir8 = tmp_dir(&format!("{label}-w8"));
    let mut cfg1 = lenet_config(label, 1);
    cfg1.method = method.clone();
    cfg1.run_dir = Some(dir1.clone());
    let mut cfg8 = lenet_config(label, 8);
    cfg8.method = method;
    cfg8.run_dir = Some(dir8.clone());

    run(&cfg1).expect("serial run");
    run(&cfg8).expect("sharded run");

    let hsck1 = std::fs::read(dir1.join(FINAL_CHECKPOINT)).expect("final.hsck (1 worker)");
    let hsck8 = std::fs::read(dir8.join(FINAL_CHECKPOINT)).expect("final.hsck (8 workers)");
    assert_eq!(
        hsck1, hsck8,
        "{label}: final.hsck differs across worker counts"
    );

    let journal1 = std::fs::read_to_string(dir1.join("run.journal.json")).expect("journal (1)");
    let journal8 = std::fs::read_to_string(dir8.join("run.journal.json")).expect("journal (8)");
    // The journal's config echo records the requested worker count and
    // the run-dir-relative pretrain checkpoint path — the two intentional
    // differences. Everything else must match byte for byte: unit
    // records, RNG snapshots, accuracies, checkpoint names.
    let normalized = journal8
        .replace("\"workers\": 8", "\"workers\": 1")
        .replace(&dir8.display().to_string(), &dir1.display().to_string());
    assert_ne!(normalized, journal8, "workers echo missing from journal");
    assert_eq!(
        journal1, normalized,
        "{label}: journal differs across worker counts beyond the workers echo"
    );

    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir8).ok();
}

#[test]
fn headstart_journal_and_checkpoint_identical_across_worker_counts() {
    let _guard = lock();
    disarm();
    assert_worker_count_invisible(Method::HeadStartLayers { sp: 2.0 }, "coordp-hs");
}

#[test]
fn baseline_journal_and_checkpoint_identical_across_worker_counts() {
    let _guard = lock();
    disarm();
    assert_worker_count_invisible(
        Method::Baseline {
            kind: BaselineKind::L1,
            keep_ratio: 0.5,
        },
        "coordp-l1",
    );
}

/// Records the guard recovery sequence an engine run went through.
#[derive(Default)]
struct RecoveryRecorder {
    recoveries: Vec<(GuardReason, GuardAction, usize, usize)>,
}

impl EngineObserver for RecoveryRecorder {
    fn on_recovery(&mut self, _unit_kind: &'static str, event: &RecoveryEvent) {
        self.recoveries
            .push((event.reason, event.action, event.episode, event.resets));
    }
}

fn layer_fixture() -> (Dataset, headstart::nn::Network, HeadStartConfig) {
    let ds = Dataset::generate(
        &DatasetSpec::cifar_like()
            .classes(3)
            .train_per_class(4)
            .test_per_class(2)
            .image_size(8),
    )
    .expect("dataset");
    let mut rng = Rng::seed_from(17);
    let net = models::vgg11(3, 3, 8, 0.25, &mut rng).expect("model");
    let cfg = HeadStartConfig::new(2.0).max_episodes(12).eval_images(8);
    (ds, net, cfg)
}

#[test]
fn nan_guard_parity_under_sharding() {
    // A NaN reward injected into an episode whose candidates are being
    // evaluated by the worker fleet must trigger the exact same
    // reset/fallback sequence — and the same final decision, bit for
    // bit — as the serial engine.
    let _guard = lock();
    let (ds, net, cfg) = layer_fixture();
    let plan = || FaultPlan::parse("nan_reward:layer:1").expect("fault plan");

    arm(plan());
    let mut serial_obs = RecoveryRecorder::default();
    let serial = LayerPruner::new(cfg.clone())
        .prune_executed(
            &mut net.clone(),
            0,
            &ds,
            &mut Rng::seed_from(5),
            &mut serial_obs,
            &mut SerialExecutor,
        )
        .expect("serial prune");
    disarm();

    arm(plan());
    let mut coord = Coordinator::new(4);
    let mut sharded_obs = RecoveryRecorder::default();
    let sharded = LayerPruner::new(cfg)
        .prune_executed(
            &mut net.clone(),
            0,
            &ds,
            &mut Rng::seed_from(5),
            &mut sharded_obs,
            &mut coord,
        )
        .expect("sharded prune");
    disarm();

    assert!(
        !serial_obs.recoveries.is_empty(),
        "the injected NaN never tripped the guard"
    );
    assert_eq!(
        serial_obs.recoveries, sharded_obs.recoveries,
        "reset/fallback sequence diverged under sharding"
    );
    assert_eq!(serial, sharded, "decision diverged under sharding");
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&serial.probs), bits(&sharded.probs));
}

#[test]
fn lost_worker_reassigns_items_and_stays_bit_identical() {
    // Kill one worker mid-episode: its remaining candidates must be
    // replayed elsewhere and the decision must still match the serial
    // engine bit for bit.
    let _guard = lock();
    let (ds, net, cfg) = layer_fixture();

    disarm();
    let serial = LayerPruner::new(cfg.clone())
        .prune(&mut net.clone(), 0, &ds, &mut Rng::seed_from(5))
        .expect("serial prune");

    arm(FaultPlan::parse("worker_lost:worker:5").expect("fault plan"));
    let mut coord = Coordinator::new(4);
    let sharded = LayerPruner::new(cfg)
        .prune_executed(
            &mut net.clone(),
            0,
            &ds,
            &mut Rng::seed_from(5),
            &mut headstart::core::NullObserver,
            &mut coord,
        )
        .expect("sharded prune with worker loss");
    disarm();

    assert_eq!(
        coord.live_count(),
        3,
        "the worker_lost fault should have killed exactly one worker"
    );
    assert_eq!(serial, sharded, "decision diverged after worker loss");
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&serial.probs), bits(&sharded.probs));
}

/// The `hs_run` binary next to this test binary's package executable
/// (both land in the same target directory).
fn hs_run_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_headstart"))
        .parent()
        .expect("target dir")
        .join(format!("hs_run{}", std::env::consts::EXE_SUFFIX))
}

/// Extracts the `prune:…` stage seconds from a run artifact.
fn prune_seconds(artifact: &std::path::Path) -> f64 {
    let text = std::fs::read_to_string(artifact).expect("artifact");
    let json = headstart::telemetry::schema::parse(&text).expect("artifact JSON");
    let obj = json.as_obj().expect("artifact object");
    let stages = match obj.get("stages") {
        Some(headstart::telemetry::schema::Json::Arr(stages)) => stages,
        other => panic!("missing stages array: {other:?}"),
    };
    for stage in stages {
        let stage = stage.as_obj().expect("stage object");
        let name = stage.get("name").and_then(|n| n.as_str()).unwrap_or("");
        if name.starts_with("prune:") {
            if let Some(headstart::telemetry::schema::Json::Num(secs)) = stage.get("seconds") {
                return *secs;
            }
        }
    }
    panic!("no prune stage in artifact {}", artifact.display());
}

#[test]
fn four_workers_beat_serial_wall_clock() {
    // The point of the coordinator: with the tensor pool pinned to one
    // thread, a 4-worker prune stage must finish faster than the serial
    // one. Runs `hs_run` as subprocesses so `HS_NUM_THREADS=1` can be
    // set per process (the pool is sized once per process).
    let _guard = lock();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads < 4 {
        eprintln!("skipping wall-clock speedup test: only {threads} CPUs available");
        return;
    }
    let bin = hs_run_bin();
    if !bin.exists() {
        eprintln!(
            "skipping wall-clock speedup test: {} not built",
            bin.display()
        );
        return;
    }
    let dir = tmp_dir("coordp-speedup");
    let mut seconds = [0.0f64; 2];
    for (slot, workers) in [(0, "1"), (1, "4")] {
        let artifact = dir.join(format!("run-w{workers}.json"));
        let out = Command::new(&bin)
            .env("HS_NUM_THREADS", "1")
            .args([
                "--label",
                "coordp-speedup",
                "--model",
                "lenet",
                "--smoke",
                "--pretrain",
                "0",
                "--finetune",
                "0",
                "--episodes",
                "6",
                "--eval-images",
                "64",
                "--workers",
                workers,
                "--artifact",
                artifact.to_str().expect("utf8"),
            ])
            .output()
            .expect("run hs_run");
        assert!(
            out.status.success(),
            "hs_run --workers {workers} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        seconds[slot] = prune_seconds(&artifact);
    }
    let [serial, sharded] = seconds;
    assert!(
        sharded < serial,
        "4-worker prune stage ({sharded:.3}s) not faster than serial ({serial:.3}s)"
    );
    std::fs::remove_dir_all(&dir).ok();
}
