//! Cross-crate integration tests: the full train → prune → fine-tune →
//! estimate pipelines, at miniature scale.

use headstart::core::{BlockPruner, HeadStartConfig, HeadStartPruner, LayerPruner};
use headstart::data::{Dataset, DatasetSpec};
use headstart::gpusim::{devices, estimate};
use headstart::nn::accounting::analyze;
use headstart::nn::optim::Sgd;
use headstart::nn::{models, surgery, train};
use headstart::pruning::driver::{prune_whole_model, train_from_scratch, FineTune};
use headstart::pruning::{
    Apoz, AutoPruner, EntropyCriterion, L1Norm, LassoChannel, Random, Slimming, TaylorCriterion,
    ThiNet,
};
use headstart::tensor::Rng;

fn tiny_dataset() -> Dataset {
    Dataset::generate(
        &DatasetSpec::cifar_like()
            .classes(4)
            .train_per_class(10)
            .test_per_class(5)
            .image_size(8),
    )
    .expect("valid spec")
}

fn pretrain(ds: &Dataset, width: f32, epochs: usize, rng: &mut Rng) -> headstart::nn::Network {
    let mut net =
        models::vgg11(ds.channels(), ds.num_classes(), ds.image_size(), width, rng).expect("model");
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    train::fit(
        &mut net,
        &mut opt,
        &ds.train_images,
        &ds.train_labels,
        16,
        epochs,
        rng,
    )
    .expect("training");
    net
}

#[test]
fn every_baseline_criterion_completes_a_whole_model_prune() {
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(1);
    let net = pretrain(&ds, 0.125, 2, &mut rng);
    let ft = FineTune {
        epochs: 1,
        ..FineTune::default()
    };
    let full_cost = analyze(&net, ds.channels(), ds.image_size()).unwrap();

    let mut criteria: Vec<Box<dyn headstart::pruning::PruningCriterion>> = vec![
        Box::new(L1Norm::new()),
        Box::new(Apoz::new()),
        Box::new(EntropyCriterion::new()),
        Box::new(Random::new()),
        Box::new(ThiNet::new().samples(32)),
        Box::new(AutoPruner::new().iterations(4)),
        Box::new(Slimming::new()),
        Box::new(TaylorCriterion::new().batches(2)),
        Box::new(LassoChannel::new().samples(32)),
    ];
    for criterion in criteria.iter_mut() {
        let mut pruned = net.clone();
        let outcome = prune_whole_model(&mut pruned, criterion.as_mut(), 0.5, &ds, &ft, &mut rng)
            .unwrap_or_else(|e| panic!("{} failed: {e}", criterion.name()));
        assert!(
            outcome.cost.total_params < full_cost.total_params,
            "{}",
            criterion.name()
        );
        assert!(
            pruned.forward(&ds.test_images, false).is_ok(),
            "{}",
            criterion.name()
        );
        assert_eq!(outcome.traces.len(), 8);
    }
}

#[test]
fn headstart_whole_model_pipeline_is_deterministic() {
    let ds = tiny_dataset();
    let cfg = HeadStartConfig::new(2.0).max_episodes(6).eval_images(16);
    let ft = FineTune {
        epochs: 1,
        ..FineTune::default()
    };
    let run = |seed: u64| {
        let mut rng = Rng::seed_from(seed);
        let mut net = pretrain(&ds, 0.125, 2, &mut rng);
        let (outcome, _) = HeadStartPruner::new(cfg.clone(), ft)
            .prune_model(&mut net, &ds, &mut rng)
            .expect("prune");
        (
            outcome.final_accuracy,
            outcome
                .traces
                .iter()
                .map(|t| t.maps_after)
                .collect::<Vec<_>>(),
        )
    };
    let (acc_a, maps_a) = run(7);
    let (acc_b, maps_b) = run(7);
    assert_eq!(acc_a, acc_b);
    assert_eq!(maps_a, maps_b);
    let (_, maps_c) = run(8);
    // A different seed virtually always chooses at least one different
    // layer width at this scale.
    assert!(
        maps_a != maps_c || acc_a != run(8).0,
        "different seeds gave identical runs"
    );
}

#[test]
fn headstart_single_layer_competitive_with_random_on_inception_accuracy() {
    // The paper's central claim at miniature scale, probed where it is
    // measurable: at an aggressive speedup (sp = 4) the surviving-filter
    // choice matters, and the learned inception must not lose to random
    // subsets. (At this scale a strict win is not guaranteed on every
    // seed — the full-size comparison lives in the fig3 experiment
    // binary — so the assertion allows a small tolerance.)
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(3);
    let net = pretrain(&ds, 0.25, 6, &mut rng);
    let ordinal = 1;
    let mut hs_total = 0.0f32;
    let mut rnd_total = 0.0f32;
    let seeds = 3u64;
    for seed in 0..seeds {
        let mut rng = Rng::seed_from(100 + seed);
        let mut hs_net = net.clone();
        let cfg = HeadStartConfig::new(4.0).max_episodes(60).eval_images(32);
        let d = LayerPruner::new(cfg)
            .prune(&mut hs_net, ordinal, &ds, &mut rng)
            .unwrap();
        let conv = hs_net.conv_indices()[ordinal];
        surgery::prune_feature_maps(&mut hs_net, conv, &d.keep).unwrap();
        hs_total += train::evaluate(&mut hs_net, &ds.test_images, &ds.test_labels, 64).unwrap();

        let mut rnd_net = net.clone();
        let keep_count = d.keep.len().max(1);
        let mut crit = Random::new();
        let site = surgery::conv_sites(&rnd_net)[ordinal];
        let keep = {
            let mut ctx = headstart::pruning::ScoreContext::new(
                &mut rnd_net,
                site,
                &ds.train_images,
                &ds.train_labels,
                &mut rng,
            );
            headstart::pruning::PruningCriterion::keep_set(&mut crit, &mut ctx, keep_count).unwrap()
        };
        surgery::prune_feature_maps(&mut rnd_net, site.conv, &keep).unwrap();
        rnd_total += train::evaluate(&mut rnd_net, &ds.test_images, &ds.test_labels, 64).unwrap();
    }
    let hs_mean = hs_total / seeds as f32;
    let rnd_mean = rnd_total / seeds as f32;
    assert!(
        hs_mean >= rnd_mean - 0.05,
        "HeadStart mean inception accuracy {hs_mean:.3} well below random {rnd_mean:.3}"
    );
}

#[test]
fn from_scratch_uses_the_pruned_architecture() {
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(4);
    let mut net = pretrain(&ds, 0.125, 1, &mut rng);
    let ft = FineTune {
        epochs: 0,
        ..FineTune::default()
    };
    prune_whole_model(&mut net, &mut L1Norm::new(), 0.5, &ds, &ft, &mut rng).unwrap();
    let pruned_cost = analyze(&net, ds.channels(), ds.image_size()).unwrap();
    let acc = train_from_scratch(&net, &ds, 2, &FineTune::default(), &mut rng).unwrap();
    assert!((0.0..=1.0).contains(&acc));
    // Architecture unchanged by from-scratch training.
    let cost_after = analyze(&net, ds.channels(), ds.image_size()).unwrap();
    assert_eq!(pruned_cost.total_params, cost_after.total_params);
}

#[test]
fn block_pruned_resnet_runs_and_costs_less() {
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(5);
    let mut net = models::resnet_cifar(2, ds.channels(), ds.num_classes(), 0.25, &mut rng).unwrap();
    let full = analyze(&net, ds.channels(), ds.image_size()).unwrap();
    let cfg = HeadStartConfig::new(2.0).max_episodes(10).eval_images(16);
    let ft = FineTune {
        epochs: 1,
        ..FineTune::default()
    };
    let (decision, acc) = BlockPruner::new(cfg)
        .prune_and_finetune(&mut net, &ds, &ft, &mut rng)
        .unwrap();
    assert!((0.0..=1.0).contains(&acc));
    let pruned = analyze(&net, ds.channels(), ds.image_size()).unwrap();
    if decision.active.iter().any(|&a| !a) {
        assert!(pruned.total_params < full.total_params);
    }
}

#[test]
fn pruning_makes_models_faster_on_every_simulated_device() {
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(6);
    let mut net = pretrain(&ds, 0.25, 1, &mut rng);
    let before: Vec<f64> = devices::all()
        .iter()
        .map(|d| {
            estimate(d, &net, ds.channels(), ds.image_size())
                .unwrap()
                .fps()
        })
        .collect();
    let ft = FineTune {
        epochs: 0,
        ..FineTune::default()
    };
    prune_whole_model(&mut net, &mut L1Norm::new(), 0.5, &ds, &ft, &mut rng).unwrap();
    for (d, &fps_before) in devices::all().iter().zip(&before) {
        let fps_after = estimate(d, &net, ds.channels(), ds.image_size())
            .unwrap()
            .fps();
        assert!(
            fps_after > fps_before,
            "{}: {fps_after} fps not faster than {fps_before}",
            d.name
        );
    }
}

#[test]
fn headstart_criterion_adapter_plugs_into_the_baseline_driver() {
    // The adapter lets the RL method run under the exact-keep-count
    // protocol of the baseline driver (used for controlled Figure-3
    // comparisons).
    use headstart::core::HeadStartCriterion;
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(21);
    let mut net = pretrain(&ds, 0.125, 2, &mut rng);
    let ft = FineTune {
        epochs: 0,
        ..FineTune::default()
    };
    let mut criterion =
        HeadStartCriterion::new(HeadStartConfig::new(2.0).max_episodes(4).eval_images(8));
    let outcome = prune_whole_model(&mut net, &mut criterion, 0.5, &ds, &ft, &mut rng).unwrap();
    assert_eq!(outcome.criterion, "HeadStart");
    // Exact keep counts, like every other driver run.
    for t in &outcome.traces {
        assert_eq!(t.maps_after, t.maps_before.div_ceil(2));
    }
}

#[test]
fn block_inner_pruning_end_to_end() {
    use headstart::core::InnerLayerPruner;
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(22);
    let mut net = models::resnet_cifar(2, ds.channels(), ds.num_classes(), 0.25, &mut rng).unwrap();
    let before = analyze(&net, ds.channels(), ds.image_size()).unwrap();
    let cfg = HeadStartConfig::new(2.0).max_episodes(6).eval_images(12);
    let pruner = InnerLayerPruner::new(cfg);
    let d = pruner.prune(&mut net, 0, &ds, &mut rng).unwrap();
    pruner.apply(&mut net, 0, &d).unwrap();
    let after = analyze(&net, ds.channels(), ds.image_size()).unwrap();
    assert!(after.total_params < before.total_params);
    assert!(net.forward(&ds.test_images, false).is_ok());
    // And the shrunk model checkpoints round-trip.
    let bytes = headstart::nn::checkpoint::to_bytes(&net).unwrap();
    let mut restored = headstart::nn::checkpoint::from_bytes(&bytes).unwrap();
    let x = &ds.test_images;
    assert_eq!(
        net.forward(x, false).unwrap(),
        restored.forward(x, false).unwrap()
    );
}

#[test]
fn masked_and_surgical_pruning_agree_end_to_end() {
    let ds = tiny_dataset();
    let mut rng = Rng::seed_from(7);
    let mut net = pretrain(&ds, 0.25, 2, &mut rng);
    let site = surgery::conv_sites(&net)[2];
    let channels = net.conv(site.conv).unwrap().out_channels();
    let keep: Vec<usize> = (0..channels).step_by(2).collect();
    let mask: Vec<f32> = (0..channels)
        .map(|c| if keep.contains(&c) { 1.0 } else { 0.0 })
        .collect();
    let mut masked = net.clone();
    masked.set_channel_mask(site.mask_node, Some(mask));
    let masked_acc = train::evaluate(&mut masked, &ds.test_images, &ds.test_labels, 64).unwrap();
    surgery::prune_feature_maps(&mut net, site.conv, &keep).unwrap();
    let surgical_acc = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64).unwrap();
    assert!(
        (masked_acc - surgical_acc).abs() < 1e-6,
        "masked {masked_acc} vs surgical {surgical_acc}"
    );
}
