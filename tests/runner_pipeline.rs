//! End-to-end tests of the `hs-runner` pipeline: full run with artifact
//! and checkpoint, checkpoint resume, and baselines routed through the
//! same pipeline as HeadStart.

use std::path::PathBuf;

use headstart::runner::{prepare, run, BaselineKind, Budget, Method, RunnerConfig, RunnerError};

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

fn smoke_config(label: &str) -> RunnerConfig {
    let mut cfg = RunnerConfig::new(label);
    cfg.budget = Budget::smoke();
    cfg
}

#[test]
fn pipeline_runs_end_to_end_and_writes_artifact() {
    let mut cfg = smoke_config("pipe-e2e");
    cfg.method = Method::HeadStartLayers { sp: 2.0 };
    let artifact = tmp("pipe_e2e.json");
    cfg.artifact = Some(artifact.clone());
    let report = run(&cfg).expect("pipeline");

    assert!(report.final_cost.total_params < report.original_cost.total_params);
    assert!(!report.traces.is_empty(), "per-layer trace recorded");
    assert!(
        report.stages.iter().any(|s| s.name.contains("pretrain")),
        "pretrain stage timed: {:?}",
        report.stages
    );
    assert!(
        report.stages.iter().any(|s| s.name.starts_with("prune:")),
        "prune stage timed: {:?}",
        report.stages
    );

    let json = std::fs::read_to_string(&artifact).expect("artifact written");
    for key in [
        "\"label\"",
        "\"original_accuracy\"",
        "\"final_accuracy\"",
        "\"compression_pct\"",
        "\"layers\"",
        "\"stages\"",
    ] {
        assert!(json.contains(key), "artifact missing {key}:\n{json}");
    }
}

#[test]
fn checkpoint_restores_the_same_model() {
    let ckpt = tmp("pipe_resume.hsck");
    let _ = std::fs::remove_file(&ckpt);
    let mut cfg = smoke_config("pipe-resume");
    cfg.checkpoint = Some(ckpt.clone());

    // First prepare pre-trains and saves; second loads the checkpoint.
    let first = prepare(&cfg).expect("first prepare");
    assert!(ckpt.exists(), "checkpoint saved after pre-training");
    let second = prepare(&cfg).expect("second prepare");

    assert_eq!(
        first.original_accuracy, second.original_accuracy,
        "restored model evaluates identically"
    );
    assert!(
        second
            .stages
            .iter()
            .any(|s| s.name.contains("checkpoint load")),
        "resume goes through the checkpoint stage: {:?}",
        second.stages
    );
    assert!(
        !second.stages.iter().any(|s| s.name.contains("pretrain")),
        "resume skips pre-training"
    );
}

#[test]
fn baselines_run_through_the_same_pipeline() {
    let prepared = prepare(&smoke_config("pipe-baseline")).expect("prepare");
    let run = prepared
        .run_method(
            &Method::Baseline {
                kind: BaselineKind::L1,
                keep_ratio: 0.5,
            },
            9,
        )
        .expect("baseline method");
    assert_eq!(run.label, "Li'17");
    assert!(run.cost.total_params < prepared.original_cost.total_params);
    assert!(!run.traces.is_empty());
}

#[test]
fn bad_cli_config_fails_fast() {
    let argv: Vec<String> = ["--method", "nope"].iter().map(|s| s.to_string()).collect();
    match RunnerConfig::from_args(&argv) {
        Err(RunnerError::BadConfig(detail)) => assert!(detail.contains("nope")),
        other => panic!("expected BadConfig, got {other:?}"),
    }
}
