//! Reproducibility guarantees: every stochastic pipeline in the
//! workspace must replay bit-exactly from its seed.

use headstart::core::{HeadStartConfig, LayerPruner};
use headstart::data::{Dataset, DatasetSpec};
use headstart::nn::optim::{RmsProp, Sgd};
use headstart::nn::{checkpoint, models, train};
use headstart::tensor::{Rng, Shape, Tensor};

fn spec() -> DatasetSpec {
    DatasetSpec::cifar_like()
        .classes(3)
        .train_per_class(6)
        .test_per_class(3)
        .image_size(8)
}

#[test]
fn dataset_generation_is_bit_exact() {
    let a = Dataset::generate(&spec()).unwrap();
    let b = Dataset::generate(&spec()).unwrap();
    assert_eq!(a.train_images, b.train_images);
    assert_eq!(a.test_images, b.test_images);
    assert_eq!(a.train_labels, b.train_labels);
}

#[test]
fn model_construction_is_bit_exact() {
    let mut r1 = Rng::seed_from(5);
    let mut r2 = Rng::seed_from(5);
    let mut a = models::vgg11(3, 3, 8, 0.25, &mut r1).unwrap();
    let mut b = models::vgg11(3, 3, 8, 0.25, &mut r2).unwrap();
    let x = Tensor::randn(Shape::d4(2, 3, 8, 8), &mut Rng::seed_from(9));
    assert_eq!(a.forward(&x, false).unwrap(), b.forward(&x, false).unwrap());
}

#[test]
fn sgd_training_replays_exactly() {
    let ds = Dataset::generate(&spec()).unwrap();
    let run = || {
        let mut rng = Rng::seed_from(11);
        let mut net = models::vgg11(3, 3, 8, 0.125, &mut rng).unwrap();
        let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
        train::fit(
            &mut net,
            &mut opt,
            &ds.train_images,
            &ds.train_labels,
            8,
            3,
            &mut rng,
        )
        .unwrap();
        let mut sum = 0.0f64;
        net.visit_params(&mut |p| sum += p.value.sum() as f64);
        sum
    };
    assert_eq!(run().to_bits(), run().to_bits());
}

#[test]
fn rmsprop_training_replays_exactly() {
    let ds = Dataset::generate(&spec()).unwrap();
    let run = || {
        let mut rng = Rng::seed_from(13);
        let mut net = models::lenet(3, 3, 8, 1.0, &mut rng).unwrap();
        let mut opt = RmsProp::new(0.01);
        train::fit(
            &mut net,
            &mut opt,
            &ds.train_images,
            &ds.train_labels,
            8,
            3,
            &mut rng,
        )
        .unwrap();
        let mut sum = 0.0f64;
        net.visit_params(&mut |p| sum += p.value.sum() as f64);
        sum
    };
    assert_eq!(run().to_bits(), run().to_bits());
}

#[test]
fn rl_pruning_decision_replays_exactly() {
    let ds = Dataset::generate(&spec()).unwrap();
    let run = || {
        let mut rng = Rng::seed_from(17);
        let mut net = models::vgg11(3, 3, 8, 0.25, &mut rng).unwrap();
        let cfg = HeadStartConfig::new(2.0).max_episodes(5).eval_images(8);
        LayerPruner::new(cfg)
            .prune(&mut net, 0, &ds, &mut rng)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.keep, b.keep);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn checkpoint_round_trip_preserves_training_state() {
    // Save mid-training, restore, continue: the restored model must
    // produce identical evaluations to the original at the save point.
    let ds = Dataset::generate(&spec()).unwrap();
    let mut rng = Rng::seed_from(19);
    let mut net = models::resnet_cifar(1, 3, 3, 0.25, &mut rng).unwrap();
    let mut opt = Sgd::new(0.05).momentum(0.9);
    train::fit(
        &mut net,
        &mut opt,
        &ds.train_images,
        &ds.train_labels,
        8,
        2,
        &mut rng,
    )
    .unwrap();
    let bytes = checkpoint::to_bytes(&net).unwrap();
    let mut restored = checkpoint::from_bytes(&bytes).unwrap();
    let acc_a = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 16).unwrap();
    let acc_b = train::evaluate(&mut restored, &ds.test_images, &ds.test_labels, 16).unwrap();
    assert_eq!(acc_a, acc_b);
    // And byte-stability: re-serializing gives the identical stream.
    assert_eq!(bytes, checkpoint::to_bytes(&restored).unwrap());
}
