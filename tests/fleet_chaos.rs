//! Flagship chaos test for the replicated serving fleet: three
//! replicas under a seeded open-loop load, with `replica_crash` killing
//! replica 1 mid-run and `replica_slow` dragging replica 2, must lose
//! nothing — every submitted request gets exactly one typed terminal
//! outcome, the crashed replica is ejected within the health budget and
//! its stranded queue fails over, hedges fire within their global
//! budget, and two runs produce byte-identical telemetry (modulo the
//! wall-clock `secs`/`ts` suffixes) and an identical `hs_obs` report.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use headstart::fleet::{
    drive_fleet_open, BalancerPolicy, FleetConfig, FleetEngine, FleetOutcome, FleetSummary,
    HealthState,
};
use headstart::nn::infer::SharedNetwork;
use headstart::nn::models;
use headstart::serve::{LoadProfile, LoadSpec, ServeConfig};
use headstart::telemetry::faults::{self, Fault, FaultPlan};
use headstart::telemetry::{Level, TelemetryConfig};
use headstart::tensor::{Rng, Shape, Tensor};

const PROBE_EVERY: u64 = 2_000;
/// `replica_crash:replica1` fires on the CRASH_PROBE-th probe round.
const CRASH_PROBE: u64 = 5;

/// Arrivals outpace the fleet (one request per 500µs vs ~1500µs of
/// dense compute per request per replica), so queues stay deep: the
/// crash strands work worth failing over, and queueing latency crosses
/// the hedge deadline.
fn scenario() -> FleetConfig {
    FleetConfig {
        replicas: 3,
        policy: BalancerPolicy::RoundRobin,
        probe_every: PROBE_EVERY,
        suspect_after: 1,
        eject_after: 1,
        recover_after: 2,
        hedge_after: 5_000,
        hedge_budget: 4,
        slow_multiplier: 4,
        tenant_quota: 0,
        shed_min_class: usize::MAX,
        trace_seed: 0x4853,
        serve: ServeConfig {
            queue_capacity: 8,
            batch_max: 2,
            linger: 1_000,
            base_cost: 1_000,
            per_item_cost: 1_000,
            batch_timeout: 10_000,
            breaker_threshold: 2,
            breaker_cooldown: 20_000,
            slow_factor: 20,
            pruned_cost_scale: 0.25,
            degrade_high: 6,
            overload_strikes: 2,
            recover_low: 1,
            recovery_batches: 2,
            trace_seed: 0x4853,
            slo_target: 0.9,
            slo_window: 20,
            replica: None,
        },
    }
}

fn load() -> LoadProfile {
    LoadSpec {
        requests: 80,
        gap: 500,
        deadline: 30_000,
        seed: 0x4853,
        tenants: 4,
        ..LoadSpec::default()
    }
    .open_profile()
}

fn chaos_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![
            Fault {
                kind: "replica_crash".to_string(),
                site: "replica1".to_string(),
                nth: CRASH_PROBE,
            },
            Fault {
                kind: "replica_slow".to_string(),
                site: "replica2".to_string(),
                nth: 3,
            },
        ],
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fleet_chaos");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

/// One full 3-replica chaos session with telemetry routed to `jsonl`.
fn run_once(jsonl: &Path) -> (Vec<FleetOutcome>, FleetSummary, FleetEngine) {
    headstart::telemetry::configure(&TelemetryConfig {
        stderr_level: Some(Level::Error),
        jsonl: Some(jsonl.to_path_buf()),
    })
    .expect("configure telemetry");
    faults::arm(chaos_plan());

    let mut rng = Rng::seed_from(21);
    let dense = SharedNetwork::new(models::lenet(3, 10, 16, 1.0, &mut rng).expect("dense net"));
    let pruned = SharedNetwork::new(models::lenet(3, 10, 16, 0.5, &mut rng).expect("pruned net"));
    let inputs = Tensor::randn(Shape::d4(8, 3, 16, 16), &mut Rng::seed_from(33));
    let mut fleet = FleetEngine::new(scenario(), dense, pruned, inputs).expect("fleet");

    let outcomes = drive_fleet_open(&mut fleet, &load()).expect("drive");
    faults::disarm();
    headstart::telemetry::flush();
    let summary = fleet.summary();
    (outcomes, summary, fleet)
}

/// The deterministic prefix of a JSONL event line: everything before
/// the wall-clock `secs`/`ts` suffix.
fn stable_prefix(line: &str) -> &str {
    let cut = ["\",\"secs\":", ",\"secs\":", ",\"ts\":"]
        .iter()
        .filter_map(|pat| line.find(pat))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

#[test]
fn replica_chaos_loses_nothing_and_replays_byte_identically() {
    let jsonl_a = tmp("run-a.jsonl");
    let jsonl_b = tmp("run-b.jsonl");
    let cfg = scenario();

    let (outcomes, summary, fleet) = run_once(&jsonl_a);
    let (outcomes_b, summary_b, _fleet_b) = run_once(&jsonl_b);

    // --- Determinism: identical outcomes, summary, event stream. ---
    assert_eq!(outcomes, outcomes_b, "outcome sequence must replay");
    assert_eq!(summary, summary_b, "summary must replay");
    let text_a = std::fs::read_to_string(&jsonl_a).expect("read run A telemetry");
    let text_b = std::fs::read_to_string(&jsonl_b).expect("read run B telemetry");
    let stable_a: Vec<&str> = text_a.lines().map(stable_prefix).collect();
    let stable_b: Vec<&str> = text_b.lines().map(stable_prefix).collect();
    assert!(!stable_a.is_empty(), "run A produced no telemetry");
    assert_eq!(
        stable_a, stable_b,
        "telemetry must be byte-identical modulo secs/ts"
    );

    // --- Accounting: zero lost requests. Every submitted request gets
    // exactly one terminal outcome even though a replica died holding
    // some of them. ---
    let profile = load();
    assert_eq!(summary.submitted, profile.entries.len() as u64);
    let mut ids: Vec<u64> = outcomes.iter().map(FleetOutcome::id).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..profile.entries.len() as u64).collect::<Vec<_>>(),
        "every request needs exactly one terminal outcome"
    );
    assert_eq!(
        summary.completed + summary.rejected_total(),
        summary.submitted,
        "counters must account for every request"
    );
    assert!(summary.completed > 0, "the fleet must keep serving");
    assert!(
        summary.rejected_total() > 0,
        "the scenario is over budget; some requests must shed typed"
    );

    // --- The chaos actually happened: the crashed replica was ejected
    // and stayed out, its stranded queue failed over, and the slow
    // replica stayed routable. ---
    assert!(summary.ejections >= 1, "the crash must eject replica 1");
    assert_eq!(
        fleet.health(1),
        HealthState::Ejected,
        "a crashed replica never rejoins"
    );
    assert!(
        fleet.health(0).routable() && fleet.health(2).routable(),
        "slow is degraded, not dead: replicas 0 and 2 stay routable"
    );
    assert!(
        summary.failovers >= 1,
        "ejection must fail stranded requests over, got {summary:?}"
    );

    // --- Hedging: slow-replica latency crosses the hedge deadline, and
    // the global budget bounds the launches. ---
    assert!(
        summary.hedges_launched >= 1,
        "hedges must fire: {summary:?}"
    );
    assert!(
        summary.hedges_launched <= cfg.hedge_budget,
        "the hedge budget is a hard cap"
    );
    assert!(
        summary.hedges_won + summary.hedges_lost <= summary.hedges_launched,
        "every settled hedge was launched first"
    );

    // --- Failover budget: from the probe round that sampled the crash
    // to the ejection event is at most `failover_budget()`. ---
    let crash_at = CRASH_PROBE * PROBE_EVERY;
    let events = headstart::obs::load_events(&text_a).expect("telemetry parses");
    let ejected_at = events
        .iter()
        .filter(|e| e.kind == "replica_health")
        .find(|e| e.num_field("replica") == Some(1.0) && e.str_field("to") == Some("ejected"))
        .and_then(|e| e.num_field("at"))
        .expect("replica 1's ejection is in the telemetry") as u64;
    assert!(
        ejected_at >= crash_at && ejected_at - crash_at <= cfg.failover_budget(),
        "ejection at {ejected_at} must land within {} of the crash at {crash_at}",
        cfg.failover_budget()
    );
    for e in events.iter().filter(|e| e.kind == "failover") {
        let at = e.num_field("at").expect("failover events carry `at`") as u64;
        assert!(
            at >= ejected_at,
            "failovers only happen at or after the ejection"
        );
    }

    // --- The hs_obs report sees the fleet and is itself reproducible. ---
    let report = headstart::obs::build_report(&events);
    let events_b = headstart::obs::load_events(&text_b).expect("run B parses");
    let report_b = headstart::obs::build_report(&events_b);
    let json = headstart::obs::report_json(&report).render();
    assert_eq!(
        json,
        headstart::obs::report_json(&report_b).render(),
        "report JSON must be identical across runs"
    );
    assert!(
        json.contains("\"fleet\""),
        "report must have a fleet section"
    );
    assert!(
        !report.fleet.replicas.is_empty(),
        "per-replica utilization must be populated"
    );
    assert!(
        report
            .fleet
            .health
            .iter()
            .any(|(_, replica, _, to)| *replica == 1 && to == "ejected"),
        "the health timeline must show replica 1's ejection"
    );
    assert_eq!(
        report.fleet.hedges.get("launched").copied().unwrap_or(0),
        summary.hedges_launched,
        "report hedge counts must agree with the engine"
    );
    assert_eq!(
        report
            .fleet
            .failovers
            .iter()
            .filter(|(_, _, _, outcome)| outcome == "rerouted")
            .count() as u64,
        summary.failovers,
        "report failover rows must agree with the engine"
    );

    // --- Fleet latency: measured from original arrival, within the
    // request deadline, on a real replica. ---
    let deadline_of: BTreeMap<u64, u64> =
        profile.entries.iter().map(|e| (e.id, e.deadline)).collect();
    for o in &outcomes {
        if let FleetOutcome::Completed {
            response,
            replica,
            latency,
            ..
        } = o
        {
            assert!(*replica < 3, "completions come from real replicas");
            assert!(
                response.completed <= deadline_of[&response.id],
                "request {} completed past its deadline",
                response.id
            );
            assert!(
                *latency > 0 && *latency <= 30_000,
                "fleet latency is measured from the original arrival"
            );
        }
    }
}
