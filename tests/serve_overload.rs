//! Flagship robustness test for the serving stack: a seeded open-loop
//! overload with injected `slow_infer` faults must be fully
//! deterministic and fully accounted for — every request gets exactly
//! one typed terminal outcome, the breaker trips and recovers, the
//! engine degrades to the pruned checkpoint and restores dense, every
//! completed response is in deadline and matches direct inference on
//! the serving model, and two runs produce a byte-identical telemetry
//! event sequence (modulo the wall-clock `secs`/`ts` suffixes).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use headstart::nn::infer::predict;
use headstart::nn::{checkpoint, models};
use headstart::serve::{
    drive_open, load_with_retry, LoadProfile, LoadSpec, ModelSlots, Outcome, RejectReason,
    RetryPolicy, ServeConfig, ServeEngine, ServeSummary, SlotKind,
};
use headstart::telemetry::faults::{self, Fault, FaultPlan};
use headstart::telemetry::{Level, TelemetryConfig};
use headstart::tensor::{Rng, Shape, Tensor};

/// The scenario: arrivals outpace the dense model (~800µs apart vs
/// 1500µs/request), the first two batches hit `slow_infer` faults and
/// time out, tripping the breaker; degradation swaps to the pruned
/// model (4x cheaper), which drains the backlog and earns the restore.
fn scenario() -> ServeConfig {
    ServeConfig {
        queue_capacity: 6,
        batch_max: 2,
        linger: 1_000,
        base_cost: 1_000,
        per_item_cost: 1_000,
        batch_timeout: 10_000,
        breaker_threshold: 2,
        breaker_cooldown: 20_000,
        slow_factor: 20,
        pruned_cost_scale: 0.25,
        degrade_high: 4,
        overload_strikes: 2,
        recover_low: 1,
        recovery_batches: 2,
        trace_seed: 0x4853,
        slo_target: 0.9,
        slo_window: 20,
        replica: None,
    }
}

fn load() -> LoadProfile {
    LoadSpec {
        requests: 60,
        gap: 800,
        deadline: 30_000,
        seed: 0x4853,
        ..LoadSpec::default()
    }
    .open_profile()
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve_overload");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

/// Saves a distinct dense/pruned checkpoint pair once and returns their
/// paths plus the serving input pool. The two models are genuinely
/// different networks so predictions reveal which slot served.
fn fixtures() -> (PathBuf, PathBuf, Tensor) {
    let dense_path = tmp("dense.hsck");
    let pruned_path = tmp("pruned.hsck");
    let mut rng = Rng::seed_from(21);
    let dense = models::lenet(3, 10, 16, 1.0, &mut rng).expect("dense net");
    let pruned = models::lenet(3, 10, 16, 0.5, &mut rng).expect("pruned net");
    checkpoint::save(&dense, &dense_path).expect("save dense");
    checkpoint::save(&pruned, &pruned_path).expect("save pruned");
    let inputs = Tensor::randn(Shape::d4(8, 3, 16, 16), &mut Rng::seed_from(33));
    (dense_path, pruned_path, inputs)
}

/// One full serving session under the fault plan, with telemetry routed
/// to `jsonl`. Returns the terminal outcomes and the engine summary.
fn run_once(
    dense_path: &Path,
    pruned_path: &Path,
    inputs: &Tensor,
    jsonl: &Path,
) -> (Vec<Outcome>, ServeSummary) {
    headstart::telemetry::configure(&TelemetryConfig {
        stderr_level: Some(Level::Error),
        jsonl: Some(jsonl.to_path_buf()),
    })
    .expect("configure telemetry");
    faults::arm(FaultPlan {
        faults: [1u64, 2]
            .iter()
            .map(|nth| Fault {
                kind: "slow_infer".to_string(),
                site: "infer".to_string(),
                nth: *nth,
            })
            .collect(),
    });

    let mut rng = Rng::seed_from(11);
    let mut clock = 0;
    let policy = RetryPolicy::default();
    let dense = load_with_retry(dense_path, SlotKind::Dense, policy, &mut rng, &mut clock)
        .expect("load dense");
    let pruned = load_with_retry(pruned_path, SlotKind::Pruned, policy, &mut rng, &mut clock)
        .expect("load pruned");
    let mut engine = ServeEngine::new(scenario(), ModelSlots::new(dense, pruned), inputs.clone())
        .expect("engine");

    let outcomes = drive_open(&mut engine, &load()).expect("drive");
    faults::disarm();
    headstart::telemetry::flush();
    (outcomes, engine.summary())
}

/// The deterministic prefix of a JSONL event line: everything before
/// the wall-clock `secs`/`ts` suffix.
fn stable_prefix(line: &str) -> &str {
    let cut = ["\",\"secs\":", ",\"secs\":", ",\"ts\":"]
        .iter()
        .filter_map(|pat| line.find(pat))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

#[test]
fn overloaded_service_sheds_degrades_and_recovers_deterministically() {
    let (dense_path, pruned_path, inputs) = fixtures();
    let jsonl_a = tmp("run-a.jsonl");
    let jsonl_b = tmp("run-b.jsonl");

    let (outcomes, summary) = run_once(&dense_path, &pruned_path, &inputs, &jsonl_a);
    let (outcomes_b, summary_b) = run_once(&dense_path, &pruned_path, &inputs, &jsonl_b);

    // --- Determinism: identical outcomes, summary, and event stream. ---
    assert_eq!(
        outcomes, outcomes_b,
        "outcome sequence must be reproducible"
    );
    assert_eq!(summary, summary_b, "summary must be reproducible");
    let text_a = std::fs::read_to_string(&jsonl_a).expect("read run A telemetry");
    let text_b = std::fs::read_to_string(&jsonl_b).expect("read run B telemetry");
    let stable_a: Vec<&str> = text_a.lines().map(stable_prefix).collect();
    let stable_b: Vec<&str> = text_b.lines().map(stable_prefix).collect();
    assert!(!stable_a.is_empty(), "run A produced no telemetry");
    assert_eq!(
        stable_a, stable_b,
        "telemetry event sequence must be byte-identical modulo secs/ts"
    );

    // --- Trace continuity: request events are trace-tagged, every
    // accepted request's trace reappears exactly once as a terminal
    // completed/shed event, and `hs_obs` can walk a shed request's
    // timeline back to its typed reason. ---
    let events = headstart::obs::load_events(&text_a).expect("telemetry parses");
    let mut accepted_traces: Vec<String> = Vec::new();
    let mut terminal: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for event in events.iter().filter(|e| e.kind == "serve_request") {
        let trace = event
            .str_field("trace_id")
            .expect("serve_request events must be trace-tagged")
            .to_string();
        let outcome = event.str_field("outcome").expect("typed outcome");
        if outcome == "accepted" {
            accepted_traces.push(trace);
        } else {
            terminal.entry(trace).or_default().push(outcome.to_string());
        }
    }
    assert!(
        !accepted_traces.is_empty(),
        "some requests must be admitted"
    );
    for trace in &accepted_traces {
        assert_eq!(
            terminal.get(trace).map(Vec::len),
            Some(1),
            "admitted trace {trace} must have exactly one terminal event"
        );
    }
    for (trace, outcomes_of_trace) in &terminal {
        assert_eq!(
            outcomes_of_trace.len(),
            1,
            "trace {trace} must not get two terminal outcomes"
        );
    }
    let shed = outcomes
        .iter()
        .find_map(|o| match o {
            Outcome::Rejected(rej) => Some(rej),
            _ => None,
        })
        .expect("the scenario sheds requests");
    let trace_id = headstart::obs::resolve_trace(&events, &shed.id.to_string())
        .expect("a shed request id resolves to its trace");
    let rows = headstart::obs::trace_timeline(&events, trace_id);
    let rendered = headstart::obs::render_timeline(trace_id, &rows);
    assert!(
        rendered.contains(shed.reason.as_str()),
        "hs_obs timeline for shed request {} must name `{}`:\n{rendered}",
        shed.id,
        shed.reason.as_str()
    );

    // --- Accounting: exactly one terminal outcome per request. ---
    let profile = load();
    assert_eq!(summary.submitted, profile.entries.len() as u64);
    let mut ids: Vec<u64> = outcomes.iter().map(Outcome::id).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..profile.entries.len() as u64).collect::<Vec<_>>(),
        "every request needs exactly one terminal outcome"
    );
    assert_eq!(
        summary.completed + summary.rejected_total(),
        summary.submitted
    );

    // --- Typed load shedding: the over-budget requests are rejected
    // with reasons, and the counters agree with the outcome stream. ---
    let mut queue_full = 0u64;
    let mut unmeetable = 0u64;
    let mut expired = 0u64;
    for o in &outcomes {
        if let Outcome::Rejected(rej) = o {
            match rej.reason {
                RejectReason::QueueFull { depth, capacity } => {
                    assert_eq!(depth, capacity, "queue_full must report a full queue");
                    queue_full += 1;
                }
                RejectReason::DeadlineUnmeetable {
                    projected,
                    deadline,
                } => {
                    assert!(projected > deadline, "unmeetable must be hopeless");
                    unmeetable += 1;
                }
                RejectReason::DeadlineExpired { now, deadline } => {
                    assert!(deadline < now + 1, "expired deadline must be in the past");
                    expired += 1;
                }
            }
        }
    }
    assert_eq!(queue_full, summary.rejected_queue_full);
    assert_eq!(unmeetable, summary.rejected_unmeetable);
    assert_eq!(expired, summary.rejected_expired);
    assert!(
        summary.rejected_total() > 0,
        "the scenario is over budget; some requests must be shed"
    );
    assert!(
        summary.completed > 0,
        "shedding must not starve the accepted requests"
    );

    // --- Breaker and degradation: the slow faults trip the breaker,
    // degradation engages, and the service recovers and restores. ---
    assert_eq!(summary.batch_timeouts, 2, "both slow batches must time out");
    assert_eq!(summary.breaker_trips, 1, "back-to-back timeouts trip once");
    assert!(summary.degrades >= 1, "the trip must degrade to pruned");
    assert_eq!(
        summary.degrades, summary.restores,
        "every degradation must eventually restore the dense model"
    );

    // --- Correctness: every completion is in deadline and matches
    // direct inference with the model slot that served it. ---
    let sample_of: BTreeMap<u64, usize> = profile
        .entries
        .iter()
        .map(|e| (e.id, e.sample % 8))
        .collect();
    let expected_dense = {
        let mut rng = Rng::seed_from(21);
        let mut net = models::lenet(3, 10, 16, 1.0, &mut rng).expect("dense net");
        predict(&mut net, &inputs).expect("dense reference")
    };
    let expected_pruned = {
        let mut rng = Rng::seed_from(21);
        let _ = models::lenet(3, 10, 16, 1.0, &mut rng).expect("dense net");
        let mut net = models::lenet(3, 10, 16, 0.5, &mut rng).expect("pruned net");
        predict(&mut net, &inputs).expect("pruned reference")
    };
    let mut served_by_pruned = 0usize;
    let mut served_by_dense = 0usize;
    for o in &outcomes {
        if let Outcome::Completed(r) = o {
            assert!(
                r.completed <= r.deadline,
                "request {} completed at {} past deadline {}",
                r.id,
                r.completed,
                r.deadline
            );
            let sample = sample_of[&r.id];
            let expected = match r.model {
                SlotKind::Dense => {
                    served_by_dense += 1;
                    expected_dense[sample]
                }
                SlotKind::Pruned => {
                    served_by_pruned += 1;
                    expected_pruned[sample]
                }
            };
            assert_eq!(
                r.class, expected,
                "request {} prediction must match direct inference on {:?}",
                r.id, r.model
            );
        }
    }
    assert!(
        served_by_pruned > 0,
        "degradation must actually serve traffic on the pruned model"
    );
    assert!(
        served_by_dense > 0,
        "the restore must put traffic back on the dense model"
    );
}
