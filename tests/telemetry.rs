//! End-to-end telemetry tests: a smoke pipeline run must emit a
//! schema-valid JSONL event stream with per-episode events and nested
//! stage spans, dump non-trivial kernel metrics in Prometheus text
//! format, and — run twice from the same seeds — produce identical
//! event sequences modulo wall-clock values.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use headstart::runner::{run, Budget, RunnerConfig};
use headstart::telemetry::schema::{parse, validate_line, Json};

/// Telemetry sinks are process-global; serialize every test that
/// reconfigures them.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

fn smoke_config(label: &str, jsonl: &Path) -> RunnerConfig {
    let mut cfg = RunnerConfig::new(label);
    cfg.budget = Budget::smoke();
    cfg.telemetry = Some(jsonl.to_path_buf());
    cfg
}

fn kind_of(line: &str) -> String {
    parse(line)
        .expect("line parses")
        .as_obj()
        .and_then(|o| o.get("kind").and_then(Json::as_str).map(String::from))
        .expect("line has kind")
}

fn name_of(line: &str) -> String {
    parse(line)
        .expect("line parses")
        .as_obj()
        .and_then(|o| o.get("name").and_then(Json::as_str).map(String::from))
        .expect("line has name")
}

#[test]
fn smoke_run_emits_valid_events_nested_spans_and_metrics() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let jsonl = tmp("telemetry_smoke.jsonl");
    let prom = tmp("telemetry_smoke.prom");
    let mut cfg = smoke_config("telemetry-smoke", &jsonl);
    cfg.metrics = Some(prom.clone());
    run(&cfg).expect("pipeline");

    let text = std::fs::read_to_string(&jsonl).expect("jsonl written");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "telemetry stream is non-empty");
    for line in &lines {
        validate_line(line).unwrap_or_else(|e| panic!("invalid event `{line}`: {e}"));
    }

    // Per-episode events from the REINFORCE loop (TelemetryObserver).
    let episodes: Vec<&&str> = lines.iter().filter(|l| kind_of(l) == "episode").collect();
    assert!(!episodes.is_empty(), "episode events emitted");
    assert!(
        episodes.iter().all(|l| name_of(l).starts_with("layer:")),
        "episodes attributed to layers"
    );

    // Stage spans nest under the root pipeline span.
    let span_names: Vec<String> = lines
        .iter()
        .filter(|l| kind_of(l) == "span")
        .map(|l| name_of(l))
        .collect();
    assert!(
        span_names.iter().any(|n| n == "pipeline"),
        "root span closed: {span_names:?}"
    );
    assert!(
        span_names
            .iter()
            .any(|n| n.starts_with("pipeline/") && n.contains("pretrain")),
        "pretrain stage nested under pipeline: {span_names:?}"
    );
    assert!(
        span_names.iter().any(|n| n.starts_with("pipeline/prune:")),
        "prune stage nested under pipeline: {span_names:?}"
    );

    // The Prometheus dump exists and the kernels actually counted work.
    let prom_text = std::fs::read_to_string(&prom).expect("prometheus dump written");
    let gemm_line = prom_text
        .lines()
        .find(|l| l.starts_with("hs_tensor_gemm_calls_total "))
        .unwrap_or_else(|| panic!("gemm counter missing:\n{prom_text}"));
    let calls: f64 = gemm_line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .expect("counter value");
    assert!(calls > 0.0, "gemm calls counted: {gemm_line}");
    assert!(
        prom_text.contains("# TYPE hs_core_inference_reward histogram"),
        "reward histogram rendered"
    );
}

/// The stable prefix of a JSONL event line: everything before the first
/// wall-clock value (`secs`/`ts` are rendered last by construction).
/// `metric` events are excluded — the registry is process-global and
/// cumulative, so their values depend on whatever ran earlier.
fn comparable(line: &str) -> Option<String> {
    if line.is_empty() || kind_of(line) == "metric" {
        return None;
    }
    let cut = line
        .find(",\"secs\":")
        .or_else(|| line.find(",\"ts\":"))
        .unwrap_or(line.len());
    Some(line[..cut].to_string())
}

#[test]
fn compact_stage_events_are_deterministic_and_schema_valid() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut streams = Vec::new();
    let mut checkpoints = Vec::new();
    for tag in ["a", "b"] {
        let jsonl = tmp(&format!("telemetry_compact_{tag}.jsonl"));
        let run_dir = tmp(&format!("telemetry_compact_run_{tag}"));
        if run_dir.exists() {
            std::fs::remove_dir_all(&run_dir).expect("clean run dir");
        }
        let mut cfg = smoke_config("telemetry-compact", &jsonl);
        cfg.run_dir = Some(run_dir.clone());
        cfg.compact = true;
        let report = run(&cfg).expect("pipeline");
        let summary = report.compact.expect("compact stage ran");
        assert!(summary.achieved_speedup > 1.0, "compaction saved FLOPs");

        let text = std::fs::read_to_string(&jsonl).expect("jsonl written");
        for line in text.lines().filter(|l| !l.is_empty()) {
            validate_line(line).unwrap_or_else(|e| panic!("invalid event `{line}`: {e}"));
        }
        let compact_events: Vec<String> = text
            .lines()
            .filter(|l| !l.is_empty() && kind_of(l) == "compact")
            .filter_map(comparable)
            .collect();
        assert!(
            compact_events.iter().any(|l| l.contains("compact/network")),
            "compact summary event emitted: {compact_events:?}"
        );
        streams.push(compact_events);
        checkpoints
            .push(std::fs::read(run_dir.join(summary.checkpoint)).expect("compact checkpoint"));
    }
    assert_eq!(
        streams[0], streams[1],
        "seeded compact runs emit identical compact events"
    );
    assert_eq!(
        checkpoints[0], checkpoints[1],
        "compacted checkpoints are byte-reproducible"
    );
}

#[test]
fn seeded_runs_emit_identical_event_streams() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let paths = [tmp("telemetry_det_a.jsonl"), tmp("telemetry_det_b.jsonl")];
    let mut streams = Vec::new();
    for jsonl in &paths {
        let cfg = smoke_config("telemetry-det", jsonl);
        run(&cfg).expect("pipeline");
        let text = std::fs::read_to_string(jsonl).expect("jsonl written");
        let events: Vec<String> = text.lines().filter_map(comparable).collect();
        assert!(!events.is_empty());
        streams.push(events);
    }
    assert_eq!(
        streams[0].len(),
        streams[1].len(),
        "seeded runs emit the same number of events"
    );
    for (i, (a, b)) in streams[0].iter().zip(&streams[1]).enumerate() {
        assert_eq!(a, b, "event {i} differs between seeded runs");
    }
}
