//! Bit-parity of structural compaction: a compacted network must
//! compute the same function as the masked-dense network it came from,
//! for every pruning-unit strategy (per-layer channel masks, whole
//! residual blocks, block interiors).
//!
//! Tolerance: masked channels contribute exact `+0.0` products to every
//! downstream accumulation, and compaction removes those terms without
//! reordering the surviving ones, so outputs agree to float exactness
//! up to `x + 0.0` sign-of-zero effects. We assert `1e-6` — far below
//! any model-relevant scale, far above accumulated-reorder noise (of
//! which there is none by construction). Inactive-block removal is an
//! exact identity and is additionally asserted bit-equal.

use headstart::nn::compact::{compact, CompactError};
use headstart::nn::surgery::conv_sites;
use headstart::nn::{models, Network, Node};
use headstart::tensor::{Rng, Shape, Tensor};

/// Largest element-wise difference between two same-shaped tensors.
fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "output shapes diverged");
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

fn assert_parity(masked: &mut Network, compacted: &mut Network, x: &Tensor, tol: f32) {
    let want = masked.forward(x, false).expect("masked forward");
    let got = compacted.forward(x, false).expect("compacted forward");
    let diff = max_abs_diff(&want, &got);
    assert!(diff <= tol, "max |masked - compacted| = {diff} > {tol}");
}

/// A seeded random binary mask with at least one kept channel.
fn random_mask(channels: usize, rng: &mut Rng) -> Vec<f32> {
    let mut mask: Vec<f32> = (0..channels)
        .map(|_| {
            if rng.next_u64().is_multiple_of(2) {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    if mask.iter().all(|&m| m == 0.0) {
        mask[0] = 1.0;
    }
    mask
}

#[test]
fn layer_masks_compact_to_parity() {
    // Per-layer strategy on both a plain-feed-forward net with a GAP
    // head (lenet) and a deeper one (alexnet): every conv site gets a
    // seeded random mask.
    for (name, in_c, size, net) in [
        (
            "lenet",
            1usize,
            16usize,
            models::lenet(1, 10, 16, 1.0, &mut Rng::seed_from(41)).unwrap(),
        ),
        (
            "alexnet",
            3,
            16,
            models::alexnet(3, 10, 16, 0.5, &mut Rng::seed_from(42)).unwrap(),
        ),
    ] {
        let mut rng = Rng::seed_from(1000);
        let mut masked = net;
        for site in conv_sites(&masked) {
            let c = masked.conv(site.conv).unwrap().out_channels();
            masked.set_channel_mask(site.mask_node, Some(random_mask(c, &mut rng)));
        }
        let mut compacted = compact(&masked, in_c, size).expect(name).net;
        let x = Tensor::randn(Shape::d4(3, in_c, size, size), &mut rng);
        assert_parity(&mut masked, &mut compacted, &x, 1e-6);
    }
}

#[test]
fn inactive_blocks_compact_to_exact_parity() {
    // Block strategy: deactivating an identity-shortcut block makes its
    // forward the identity; compaction removes the node. The surviving
    // graph runs the same ops, so parity is exact (tolerance 0).
    let mut rng = Rng::seed_from(7);
    let mut masked = models::resnet_cifar(2, 3, 10, 0.5, &mut rng).unwrap();
    let prunable: Vec<usize> = masked
        .block_indices()
        .into_iter()
        .filter(|&i| match masked.node(i) {
            Node::Block(b) => b.can_prune(),
            _ => false,
        })
        .collect();
    assert!(prunable.len() >= 2, "resnet14 should have prunable blocks");
    for &idx in &prunable {
        masked.set_block_active(idx, false).unwrap();
    }
    let compact_net = compact(&masked, 3, 8).expect("compact");
    assert_eq!(compact_net.report.changes.len(), prunable.len());
    let mut compacted = compact_net.net;
    let x = Tensor::randn(Shape::d4(2, 3, 8, 8), &mut rng);
    assert_parity(&mut masked, &mut compacted, &x, 0.0);
}

#[test]
fn inner_masks_compact_to_parity() {
    // Inner strategy: every residual block's interior gets a seeded
    // random mask between conv1 and conv2.
    let mut rng = Rng::seed_from(13);
    let mut masked = models::resnet_cifar(2, 3, 10, 0.5, &mut rng).unwrap();
    for idx in masked.block_indices() {
        let inner = match masked.node(idx) {
            Node::Block(b) => b.inner_channels(),
            _ => unreachable!(),
        };
        let mask = random_mask(inner, &mut rng);
        match masked.node_mut(idx) {
            Node::Block(b) => b.set_inner_mask(Some(mask)).unwrap(),
            _ => unreachable!(),
        }
    }
    let mut compacted = compact(&masked, 3, 8).expect("compact").net;
    let x = Tensor::randn(Shape::d4(2, 3, 8, 8), &mut rng);
    assert_parity(&mut masked, &mut compacted, &x, 1e-6);
}

#[test]
fn mixed_block_and_inner_pruning_compacts_to_parity() {
    // The strategies compose: one block deactivated, the others
    // interior-pruned, all realized in a single compaction pass.
    let mut rng = Rng::seed_from(99);
    let mut masked = models::resnet_cifar(2, 3, 10, 0.5, &mut rng).unwrap();
    let blocks = masked.block_indices();
    let mut deactivated = false;
    for &idx in &blocks {
        let (can_prune, inner) = match masked.node(idx) {
            Node::Block(b) => (b.can_prune(), b.inner_channels()),
            _ => unreachable!(),
        };
        if can_prune && !deactivated {
            masked.set_block_active(idx, false).unwrap();
            deactivated = true;
        } else {
            let mask = random_mask(inner, &mut rng);
            match masked.node_mut(idx) {
                Node::Block(b) => b.set_inner_mask(Some(mask)).unwrap(),
                _ => unreachable!(),
            }
        }
    }
    assert!(deactivated, "no prunable block found");
    let mut compacted = compact(&masked, 3, 8).expect("compact").net;
    let x = Tensor::randn(Shape::d4(2, 3, 8, 8), &mut rng);
    assert_parity(&mut masked, &mut compacted, &x, 1e-6);
}

#[test]
fn degenerate_units_surface_typed_errors_not_panics() {
    // All-zero masks would produce zero-dimension GEMMs; the compactor
    // must refuse with a typed error for both unit kinds.
    let mut rng = Rng::seed_from(3);
    let mut net = models::lenet(1, 10, 16, 1.0, &mut rng).unwrap();
    let site = conv_sites(&net)[0];
    let c = net.conv(site.conv).unwrap().out_channels();
    net.set_channel_mask(site.mask_node, Some(vec![0.0; c]));
    assert!(matches!(
        compact(&net, 1, 16).unwrap_err(),
        CompactError::DegenerateUnit { kind: "conv", .. }
    ));

    let mut resnet = models::resnet_cifar(1, 3, 10, 0.5, &mut rng).unwrap();
    let idx = resnet.block_indices()[0];
    let inner = match resnet.node(idx) {
        Node::Block(b) => b.inner_channels(),
        _ => unreachable!(),
    };
    match resnet.node_mut(idx) {
        Node::Block(b) => b.set_inner_mask(Some(vec![0.0; inner])).unwrap(),
        _ => unreachable!(),
    }
    assert!(matches!(
        compact(&resnet, 3, 8).unwrap_err(),
        CompactError::DegenerateUnit {
            kind: "block-inner",
            ..
        }
    ));
}
