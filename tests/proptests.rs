//! Property-based tests over the workspace's core invariants.

use headstart::gpusim::{estimate_workload, LayerWork, Workload};
use headstart::nn::layer::{
    AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU,
};
use headstart::nn::surgery::{conv_sites, keep_from_mask, prune_feature_maps};
use headstart::nn::{checkpoint, Network, Node};
use headstart::pruning::top_k_indices;
use headstart::tensor::{col2im, im2col, Conv2dGeometry, Rng, Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reshape preserves the buffer; double reshape round-trips.
    #[test]
    fn reshape_round_trips(n in 1usize..6, m in 1usize..6, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::randn(Shape::d2(n, m), &mut rng);
        let flat = t.clone().reshape(Shape::d1(n * m)).unwrap();
        prop_assert_eq!(flat.data(), t.data());
        let back = flat.reshape(Shape::d2(n, m)).unwrap();
        prop_assert_eq!(back, t);
    }

    /// index_select along axis 0 then stack reassembles the original.
    #[test]
    fn index_select_axis0_is_row_extraction(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let t = Tensor::randn(Shape::d2(rows, cols), &mut rng);
        let all: Vec<usize> = (0..rows).collect();
        prop_assert_eq!(t.index_select(0, &all).unwrap(), t);
    }

    /// ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ for random geometries — the
    /// adjoint identity that conv backprop correctness rests on.
    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..4,
        h in 4usize..9,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * padding >= k);
        let geom = Conv2dGeometry::new(c, h, h, k, stride, padding);
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(Shape::d3(c, h, h), &mut rng);
        let y = Tensor::randn(Shape::d2(geom.col_rows(), geom.col_cols()), &mut rng);
        let lhs: f64 = im2col(&x, &geom).unwrap().data().iter()
            .zip(y.data()).map(|(a, b)| (a * b) as f64).sum();
        let rhs: f64 = x.data().iter()
            .zip(col2im(&y, &geom).unwrap().data()).map(|(a, b)| (a * b) as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// matmul distributes over addition: (A+B)·C == A·C + B·C.
    #[test]
    fn matmul_is_linear(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(Shape::d2(m, k), &mut rng);
        let b = Tensor::randn(Shape::d2(m, k), &mut rng);
        let c = Tensor::randn(Shape::d2(k, n), &mut rng);
        let lhs = (&a + &b).matmul(&c).unwrap();
        let rhs = &a.matmul(&c).unwrap() + &b.matmul(&c).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + x.abs()));
        }
    }

    /// top_k returns exactly k sorted, distinct, in-range indices, and
    /// no excluded score strictly beats an included one.
    #[test]
    fn top_k_is_a_correct_selection(scores in prop::collection::vec(-100.0f32..100.0, 1..30), frac in 0.01f32..1.0) {
        let k = ((scores.len() as f32 * frac).ceil() as usize).clamp(1, scores.len());
        let keep = top_k_indices(&scores, k);
        prop_assert_eq!(keep.len(), k);
        prop_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(keep.iter().all(|&i| i < scores.len()));
        let min_kept = keep.iter().map(|&i| scores[i]).fold(f32::INFINITY, f32::min);
        for (i, &s) in scores.iter().enumerate() {
            if !keep.contains(&i) {
                prop_assert!(s <= min_kept, "excluded {} beats kept min {}", s, min_kept);
            }
        }
    }

    /// keep_from_mask inverts a 0/1 mask.
    #[test]
    fn keep_from_mask_matches_nonzeros(bits in prop::collection::vec(prop::bool::ANY, 1..40)) {
        let mask: Vec<f32> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let keep = keep_from_mask(&mask);
        prop_assert_eq!(keep.len(), bits.iter().filter(|&&b| b).count());
        for &i in &keep {
            prop_assert!(bits[i]);
        }
    }

    /// Surgery == masking, for arbitrary non-empty keep sets on a small
    /// conv-bn-relu-conv network (eval mode).
    #[test]
    fn surgery_equals_masking(bits in prop::collection::vec(prop::bool::ANY, 6), seed in 0u64..500) {
        let keep: Vec<usize> = bits.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect();
        prop_assume!(!keep.is_empty());
        let mut rng = Rng::seed_from(seed);
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(2, 6, 3, 1, 1, &mut rng)));
        net.push(Node::Bn(BatchNorm2d::new(6)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(6, 3, 3, 1, 1, &mut rng)));
        let x = Tensor::randn(Shape::d4(2, 2, 6, 6), &mut rng);
        for _ in 0..3 {
            net.forward(&x, true).unwrap(); // warm BN statistics
        }
        let mask: Vec<f32> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let mut masked = net.clone();
        masked.set_channel_mask(2, Some(mask));
        let y_masked = masked.forward(&x, false).unwrap();
        let site = conv_sites(&net)[0];
        prune_feature_maps(&mut net, site.conv, &keep).unwrap();
        let y_pruned = net.forward(&x, false).unwrap();
        for (a, b) in y_masked.data().iter().zip(y_pruned.data()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{} vs {}", a, b);
        }
    }

    /// Augmentation preserves shape and never invents values: every
    /// output pixel is either zero (padding) or present somewhere in the
    /// same sample/channel of the input.
    #[test]
    fn augmentation_is_a_permutation_with_padding(
        pad in 0usize..3,
        flip in prop::bool::ANY,
        seed in 0u64..500,
    ) {
        use headstart::data::Augment;
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(Shape::d4(2, 2, 6, 6), &mut rng);
        let aug = Augment { flip, pad };
        let y = aug.apply(&x, &mut rng).unwrap();
        prop_assert_eq!(y.shape(), x.shape());
        for n in 0..2 {
            for c in 0..2 {
                let src: Vec<f32> = (0..36)
                    .map(|p| x.at(&[n, c, p / 6, p % 6]))
                    .collect();
                for p in 0..36 {
                    let v = y.at(&[n, c, p / 6, p % 6]);
                    prop_assert!(
                        v == 0.0 || src.iter().any(|&s| s == v),
                        "pixel {} not from source (n={}, c={})", v, n, c
                    );
                }
            }
        }
    }

    /// Checkpoints round-trip random small architectures bit-exactly:
    /// the restored network computes the identical function.
    #[test]
    fn checkpoint_round_trips_random_architectures(
        stages in prop::collection::vec((2usize..6, prop::bool::ANY, 0u8..3), 1..4),
        classes in 2usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut net = Network::new();
        let mut channels = 2usize;
        let mut spatial = 8usize;
        for (out, with_bn, pool_kind) in &stages {
            net.push(Node::Conv(Conv2d::new(channels, *out, 3, 1, 1, &mut rng)));
            if *with_bn {
                net.push(Node::Bn(BatchNorm2d::new(*out)));
            }
            net.push(Node::Relu(ReLU::new()));
            if spatial >= 4 {
                match pool_kind {
                    1 => { net.push(Node::MaxPool(MaxPool2d::new(2))); spatial /= 2; }
                    2 => { net.push(Node::AvgPool(AvgPool2d::new(2))); spatial /= 2; }
                    _ => {}
                }
            }
            channels = *out;
        }
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(channels, classes, &mut rng)));
        // Warm BN so running stats are non-trivial, then round-trip.
        let x = Tensor::randn(Shape::d4(2, 2, 8, 8), &mut rng);
        net.forward(&x, true).unwrap();
        let bytes = checkpoint::to_bytes(&net).unwrap();
        let mut restored = checkpoint::from_bytes(&bytes).unwrap();
        let ya = net.forward(&x, false).unwrap();
        let yb = restored.forward(&x, false).unwrap();
        prop_assert_eq!(ya, yb);
        // Serialization is byte-stable.
        prop_assert_eq!(bytes, checkpoint::to_bytes(&restored).unwrap());
    }

    /// Roofline latency is monotone: strictly more MACs and bytes on
    /// every kernel can never be faster.
    #[test]
    fn roofline_latency_is_monotone(
        macs in prop::collection::vec(1u64..10_000_000, 1..8),
        extra in 1u64..1_000_000,
    ) {
        let mk = |macs: &[u64], bump: u64| Workload {
            name: "w".into(),
            layers: macs.iter().map(|&m| LayerWork {
                kind: "conv".into(),
                macs: m + bump,
                bytes_read: 4 * (m + bump),
                bytes_written: 1024,
            }).collect(),
        };
        let d = headstart::gpusim::devices::gtx_1080ti();
        let base = estimate_workload(&d, &mk(&macs, 0)).unwrap().total_seconds;
        let bigger = estimate_workload(&d, &mk(&macs, extra)).unwrap().total_seconds;
        prop_assert!(bigger >= base);
    }

    /// The reward algebra (Eqs. 2–4): on-target actions with equal
    /// accuracy always dominate off-target ones.
    #[test]
    fn reward_prefers_target_speedup(total in 4usize..256, acc in 0.0f32..1.0) {
        use headstart::core::reward::reward;
        let sp = 2.0f32;
        let on_target = (total as f32 / sp).round() as usize;
        prop_assume!(on_target >= 1 && on_target < total);
        let r_on = reward(acc, 0.8, total, on_target, sp);
        let r_off = reward(acc, 0.8, total, (on_target / 2).max(1), sp);
        prop_assert!(r_on >= r_off);
    }
}
