//! Property-based tests over the workspace's core invariants.
//!
//! The original external property-testing dependency is unavailable in
//! the offline build, so each property is driven by a deterministic
//! `Rng`-seeded loop: every iteration draws fresh random dimensions and
//! values, which preserves the shrink-free spirit of the originals while
//! keeping failures reproducible from the printed iteration seed.

use headstart::gpusim::{estimate_workload, LayerWork, Workload};
use headstart::nn::layer::{
    AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU,
};
use headstart::nn::surgery::{conv_sites, keep_from_mask, prune_feature_maps};
use headstart::nn::{checkpoint, Network, Node};
use headstart::pruning::top_k_indices;
use headstart::tensor::{col2im, im2col, Conv2dGeometry, Rng, Shape, Tensor};

const CASES: u64 = 64;

/// Reshape preserves the buffer; double reshape round-trips.
#[test]
fn reshape_round_trips() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let n = 1 + rng.below(5);
        let m = 1 + rng.below(5);
        let t = Tensor::randn(Shape::d2(n, m), &mut rng);
        let flat = t.clone().reshape(Shape::d1(n * m)).unwrap();
        assert_eq!(flat.data(), t.data(), "seed {seed}");
        let back = flat.reshape(Shape::d2(n, m)).unwrap();
        assert_eq!(back, t, "seed {seed}");
    }
}

/// index_select along axis 0 with the identity index set reassembles the
/// original.
#[test]
fn index_select_axis0_is_row_extraction() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let rows = 1 + rng.below(4);
        let cols = 1 + rng.below(4);
        let t = Tensor::randn(Shape::d2(rows, cols), &mut rng);
        let all: Vec<usize> = (0..rows).collect();
        assert_eq!(t.index_select(0, &all).unwrap(), t, "seed {seed}");
    }
}

/// ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ for random geometries — the
/// adjoint identity that conv backprop correctness rests on.
#[test]
fn im2col_col2im_adjoint() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let c = 1 + rng.below(3);
        let h = 4 + rng.below(5);
        let k = 1 + rng.below(3);
        let stride = 1 + rng.below(2);
        let padding = rng.below(2);
        if h + 2 * padding < k {
            continue;
        }
        let geom = Conv2dGeometry::new(c, h, h, k, stride, padding);
        let x = Tensor::randn(Shape::d3(c, h, h), &mut rng);
        let y = Tensor::randn(Shape::d2(geom.col_rows(), geom.col_cols()), &mut rng);
        let lhs: f64 = im2col(&x, &geom)
            .unwrap()
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| (a * b) as f64)
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(col2im(&y, &geom).unwrap().data())
            .map(|(a, b)| (a * b) as f64)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "seed {seed}: {lhs} vs {rhs}"
        );
    }
}

/// matmul distributes over addition: (A+B)·C == A·C + B·C.
#[test]
fn matmul_is_linear() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let m = 1 + rng.below(4);
        let k = 1 + rng.below(4);
        let n = 1 + rng.below(4);
        let a = Tensor::randn(Shape::d2(m, k), &mut rng);
        let b = Tensor::randn(Shape::d2(m, k), &mut rng);
        let c = Tensor::randn(Shape::d2(k, n), &mut rng);
        let lhs = (&a + &b).matmul(&c).unwrap();
        let rhs = &a.matmul(&c).unwrap() + &b.matmul(&c).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!(
                (x - y).abs() < 1e-4 * (1.0 + x.abs()),
                "seed {seed}: {x} vs {y}"
            );
        }
    }
}

/// top_k returns exactly k sorted, distinct, in-range indices, and no
/// excluded score strictly beats an included one.
#[test]
fn top_k_is_a_correct_selection() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let len = 1 + rng.below(29);
        let scores: Vec<f32> = (0..len).map(|_| rng.uniform_in(-100.0, 100.0)).collect();
        let frac = rng.uniform_in(0.01, 1.0);
        let k = ((len as f32 * frac).ceil() as usize).clamp(1, len);
        let keep = top_k_indices(&scores, k);
        assert_eq!(keep.len(), k, "seed {seed}");
        assert!(keep.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        assert!(keep.iter().all(|&i| i < len), "seed {seed}");
        let min_kept = keep
            .iter()
            .map(|&i| scores[i])
            .fold(f32::INFINITY, f32::min);
        for (i, &s) in scores.iter().enumerate() {
            if !keep.contains(&i) {
                assert!(
                    s <= min_kept,
                    "seed {seed}: excluded {s} beats kept min {min_kept}"
                );
            }
        }
    }
}

/// keep_from_mask inverts a 0/1 mask.
#[test]
fn keep_from_mask_matches_nonzeros() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let len = 1 + rng.below(39);
        let bits: Vec<bool> = (0..len).map(|_| rng.bernoulli(0.5)).collect();
        let mask: Vec<f32> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let keep = keep_from_mask(&mask);
        assert_eq!(
            keep.len(),
            bits.iter().filter(|&&b| b).count(),
            "seed {seed}"
        );
        for &i in &keep {
            assert!(bits[i], "seed {seed}");
        }
    }
}

/// Surgery == masking, for arbitrary non-empty keep sets on a small
/// conv-bn-relu-conv network (eval mode).
#[test]
fn surgery_equals_masking() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let bits: Vec<bool> = (0..6).map(|_| rng.bernoulli(0.5)).collect();
        let keep: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        if keep.is_empty() {
            continue;
        }
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(2, 6, 3, 1, 1, &mut rng)));
        net.push(Node::Bn(BatchNorm2d::new(6)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(6, 3, 3, 1, 1, &mut rng)));
        let x = Tensor::randn(Shape::d4(2, 2, 6, 6), &mut rng);
        for _ in 0..3 {
            net.forward(&x, true).unwrap(); // warm BN statistics
        }
        let mask: Vec<f32> = bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let mut masked = net.clone();
        masked.set_channel_mask(2, Some(mask));
        let y_masked = masked.forward(&x, false).unwrap();
        let site = conv_sites(&net)[0];
        prune_feature_maps(&mut net, site.conv, &keep).unwrap();
        let y_pruned = net.forward(&x, false).unwrap();
        for (a, b) in y_masked.data().iter().zip(y_pruned.data()) {
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + a.abs()),
                "seed {seed}: {a} vs {b}"
            );
        }
    }
}

/// Augmentation preserves shape and never invents values: every output
/// pixel is either zero (padding) or present somewhere in the same
/// sample/channel of the input.
#[test]
fn augmentation_is_a_permutation_with_padding() {
    use headstart::data::Augment;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let pad = rng.below(3);
        let flip = rng.bernoulli(0.5);
        let x = Tensor::randn(Shape::d4(2, 2, 6, 6), &mut rng);
        let aug = Augment { flip, pad };
        let y = aug.apply(&x, &mut rng).unwrap();
        assert_eq!(y.shape(), x.shape(), "seed {seed}");
        for n in 0..2 {
            for c in 0..2 {
                let src: Vec<f32> = (0..36).map(|p| x.at(&[n, c, p / 6, p % 6])).collect();
                for p in 0..36 {
                    let v = y.at(&[n, c, p / 6, p % 6]);
                    assert!(
                        v == 0.0 || src.contains(&v),
                        "seed {seed}: pixel {v} not from source (n={n}, c={c})"
                    );
                }
            }
        }
    }
}

/// Checkpoints round-trip random small architectures bit-exactly: the
/// restored network computes the identical function.
#[test]
fn checkpoint_round_trips_random_architectures() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let n_stages = 1 + rng.below(3);
        let stages: Vec<(usize, bool, u8)> = (0..n_stages)
            .map(|_| (2 + rng.below(4), rng.bernoulli(0.5), rng.below(3) as u8))
            .collect();
        let classes = 2 + rng.below(3);
        let mut net = Network::new();
        let mut channels = 2usize;
        let mut spatial = 8usize;
        for (out, with_bn, pool_kind) in &stages {
            net.push(Node::Conv(Conv2d::new(channels, *out, 3, 1, 1, &mut rng)));
            if *with_bn {
                net.push(Node::Bn(BatchNorm2d::new(*out)));
            }
            net.push(Node::Relu(ReLU::new()));
            if spatial >= 4 {
                match pool_kind {
                    1 => {
                        net.push(Node::MaxPool(MaxPool2d::new(2)));
                        spatial /= 2;
                    }
                    2 => {
                        net.push(Node::AvgPool(AvgPool2d::new(2)));
                        spatial /= 2;
                    }
                    _ => {}
                }
            }
            channels = *out;
        }
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(channels, classes, &mut rng)));
        // Warm BN so running stats are non-trivial, then round-trip.
        let x = Tensor::randn(Shape::d4(2, 2, 8, 8), &mut rng);
        net.forward(&x, true).unwrap();
        let bytes = checkpoint::to_bytes(&net).unwrap();
        let mut restored = checkpoint::from_bytes(&bytes).unwrap();
        let ya = net.forward(&x, false).unwrap();
        let yb = restored.forward(&x, false).unwrap();
        assert_eq!(ya, yb, "seed {seed}");
        // Serialization is byte-stable.
        assert_eq!(
            bytes,
            checkpoint::to_bytes(&restored).unwrap(),
            "seed {seed}"
        );
    }
}

/// Roofline latency is monotone: strictly more MACs and bytes on every
/// kernel can never be faster.
#[test]
fn roofline_latency_is_monotone() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let n_layers = 1 + rng.below(7);
        let macs: Vec<u64> = (0..n_layers)
            .map(|_| 1 + rng.below(9_999_999) as u64)
            .collect();
        let extra = 1 + rng.below(999_999) as u64;
        let mk = |macs: &[u64], bump: u64| Workload {
            name: "w".into(),
            layers: macs
                .iter()
                .map(|&m| LayerWork {
                    kind: "conv".into(),
                    macs: m + bump,
                    bytes_read: 4 * (m + bump),
                    bytes_written: 1024,
                })
                .collect(),
        };
        let d = headstart::gpusim::devices::gtx_1080ti();
        let base = estimate_workload(&d, &mk(&macs, 0)).unwrap().total_seconds;
        let bigger = estimate_workload(&d, &mk(&macs, extra))
            .unwrap()
            .total_seconds;
        assert!(bigger >= base, "seed {seed}: {bigger} < {base}");
    }
}

/// The reward algebra (Eqs. 2–4): on-target actions with equal accuracy
/// always dominate off-target ones.
#[test]
fn reward_prefers_target_speedup() {
    use headstart::core::reward::reward;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let total = 4 + rng.below(252);
        let acc = rng.uniform_in(0.0, 1.0);
        let sp = 2.0f32;
        let on_target = (total as f32 / sp).round() as usize;
        if on_target < 1 || on_target >= total {
            continue;
        }
        let r_on = reward(acc, 0.8, total, on_target, sp);
        let r_off = reward(acc, 0.8, total, (on_target / 2).max(1), sp);
        assert!(r_on >= r_off, "seed {seed}: {r_on} < {r_off}");
    }
}

/// The coordinator's work-assignment schedule is an exact partition:
/// for arbitrary item/worker counts, every item index lands in exactly
/// one shard (none lost, none duplicated), each shard is sorted, and no
/// shard holds more than its fair round-robin share.
#[test]
fn shard_plan_is_an_exact_partition() {
    use headstart::coord::ShardPlan;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let n_items = rng.below(200);
        let n_workers = rng.below(17);
        let plan = ShardPlan::assign(n_items, n_workers);
        assert_eq!(plan.worker_count(), n_workers.max(1), "seed {seed}");
        assert_eq!(plan.item_count(), n_items, "seed {seed}");
        let fair_share = n_items.div_ceil(n_workers.max(1));
        let mut seen = vec![0usize; n_items];
        for shard in plan.shards() {
            assert!(
                shard.len() <= fair_share,
                "seed {seed}: shard over fair share"
            );
            for pair in shard.windows(2) {
                assert!(pair[0] < pair[1], "seed {seed}: shard not increasing");
            }
            for &item in shard {
                assert!(item < n_items, "seed {seed}: item {item} out of range");
                seen[item] += 1;
            }
        }
        assert!(
            seen.iter().all(|&count| count == 1),
            "seed {seed}: schedule lost or duplicated an item: {seen:?}"
        );
    }
}

#[test]
fn fault_plans_round_trip_through_their_spec() {
    use headstart::telemetry::faults::{Fault, FaultPlan, KIND_SITES};
    for seed in 0..CASES {
        let mut rng = Rng::seed_from(seed);
        let mut faults = Vec::new();
        for _ in 0..1 + rng.below(6) {
            let (kind, sites) = KIND_SITES[rng.below(KIND_SITES.len())];
            // Replica-scoped kinds have no fixed site list; any
            // `replica<K>` is valid.
            let site = if sites.is_empty() {
                format!("replica{}", rng.below(8))
            } else {
                sites[rng.below(sites.len())].to_string()
            };
            let fault = Fault {
                kind: kind.to_string(),
                site,
                nth: 1 + rng.below(9) as u64,
            };
            if !faults.contains(&fault) {
                faults.push(fault);
            }
        }
        let plan = FaultPlan { faults };
        // format -> parse -> format is a fixed point: the rendered spec
        // is canonical (`kind:site:n` with the count always explicit).
        let spec = plan.to_string();
        let parsed = FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(parsed, plan, "seed {seed}: parse changed the plan");
        assert_eq!(parsed.to_string(), spec, "seed {seed}: spec not canonical");
    }
}
