//! Refactor guard: the engine-driven [`LayerPruner`] must reproduce the
//! pre-refactor episode loop bit-identically.
//!
//! The fixture below was recorded by running the original (pre
//! `EpisodeEngine`) `LayerPruner::prune` implementation on a fixed-seed
//! synthetic setup and dumping every output as raw `f32` bits. All
//! arithmetic in the workspace is deterministic (own RNG, deterministic
//! thread pool), so any divergence — an extra RNG draw, a reordered
//! float accumulation, a changed convergence test — fails this test.

use headstart::core::{ConvergenceReason, HeadStartConfig, LayerPruner};
use headstart::data::{Dataset, DatasetSpec};
use headstart::nn::models;
use headstart::tensor::Rng;

/// Expected keep set of conv ordinal 0 (16 maps at width 0.25).
const KEEP: [usize; 8] = [0, 2, 5, 6, 7, 9, 12, 13];

/// `R(Aᴵ)` per episode, as `f32::to_bits`.
const REWARD_BITS: [u32; 12] = [
    1020849600, 1053858568, 1053858568, 1053858568, 1060205080, 1060205080, 1060205080, 1060205080,
    1055989012, 1060205080, 1060205080, 1060205080,
];

/// Final keep probabilities, as `f32::to_bits`.
const PROB_BITS: [u32; 16] = [
    1065349459, 1017027617, 1065317476, 1002536233, 1042626213, 1065299997, 1064129520, 1065341396,
    1015733871, 1064782390, 1048370481, 1015234111, 1064955032, 1065268621, 997462632, 1009121424,
];

/// Inception eval accuracy, as `f32::to_bits`.
const ACC_BITS: u32 = 1052770304;

#[test]
fn engine_reproduces_pre_refactor_layer_decision_bit_exactly() {
    let ds = Dataset::generate(
        &DatasetSpec::cifar_like()
            .classes(3)
            .train_per_class(6)
            .test_per_class(3)
            .image_size(8),
    )
    .unwrap();
    let mut rng = Rng::seed_from(17);
    let mut net = models::vgg11(3, 3, 8, 0.25, &mut rng).unwrap();
    let cfg = HeadStartConfig::new(2.0).max_episodes(12).eval_images(8);
    let d = LayerPruner::new(cfg)
        .prune(&mut net, 0, &ds, &mut rng)
        .unwrap();

    assert_eq!(d.keep, KEEP);
    assert_eq!(d.trace.episodes, 12);
    // max_episodes(12) clamps min_episodes to 12, so the pre-refactor
    // loop ran out its budget rather than converging.
    assert_eq!(d.trace.convergence, ConvergenceReason::EpisodeBudget);
    let reward_bits: Vec<u32> = d.trace.reward_history.iter().map(|r| r.to_bits()).collect();
    assert_eq!(reward_bits, REWARD_BITS, "reward trace diverged");
    let prob_bits: Vec<u32> = d.probs.iter().map(|p| p.to_bits()).collect();
    assert_eq!(prob_bits, PROB_BITS, "converged probabilities diverged");
    assert_eq!(
        d.inception_eval_accuracy.to_bits(),
        ACC_BITS,
        "inception eval accuracy diverged"
    );
}
