//! Block-level HeadStart pruning of a CIFAR ResNet — the paper's Table 4
//! experiment: prune whole residual blocks of a deep ResNet and compare
//! against the shallower ResNet of the same family.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example prune_resnet_blocks
//! ```

use std::error::Error;

use headstart::core::{BlockPruner, HeadStartConfig};
use headstart::data::{Dataset, DatasetSpec};
use headstart::nn::accounting::analyze;
use headstart::nn::optim::Sgd;
use headstart::nn::{models, train};
use headstart::pruning::driver::FineTune;
use headstart::tensor::Rng;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = Rng::seed_from(11);
    let ds = Dataset::generate(&DatasetSpec::cifar_like())?;

    // Deep model: ResNet-38 (n = 6) at 1/4 width, a scaled stand-in for
    // the paper's ResNet-110; its "shallow sibling" is ResNet-20 (n = 3),
    // standing in for ResNet-56.
    let n_deep = 6;
    let mut deep = models::resnet_cifar(n_deep, ds.channels(), ds.num_classes(), 0.25, &mut rng)?;
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    for _ in 0..12 {
        train::train_epoch(
            &mut deep,
            &mut opt,
            &ds.train_images,
            &ds.train_labels,
            32,
            &mut rng,
        )?;
    }
    let deep_acc = train::evaluate(&mut deep, &ds.test_images, &ds.test_labels, 64)?;
    let deep_cost = analyze(&deep, ds.channels(), ds.image_size())?;

    // HeadStart block pruning towards half the parameters.
    let cfg = HeadStartConfig::new(2.0).max_episodes(40);
    let ft = FineTune {
        epochs: 6,
        ..FineTune::default()
    };
    let pruner = BlockPruner::new(cfg);
    let (decision, pruned_acc) = pruner.prune_and_finetune(&mut deep, &ds, &ft, &mut rng)?;
    let pruned_cost = analyze(&deep, ds.channels(), ds.image_size())?;

    // Learned per-group block counts (Figures 4–5 in miniature).
    let groups = models::resnet_block_groups(n_deep);
    let mut per_group = [0usize; 3];
    for (g, &active) in groups.iter().zip(&decision.active) {
        if active {
            per_group[*g] += 1;
        }
    }

    println!(
        "ResNet-{} original : acc {:.2}%, {:.3}M params",
        6 * n_deep + 2,
        deep_acc * 100.0,
        deep_cost.params_millions()
    );
    println!(
        "HeadStart pruned    : acc {:.2}%, {:.3}M params (C.R. {:.1}%), blocks per group <{}, {}, {}> of <{n_deep}, {n_deep}, {n_deep}>",
        pruned_acc * 100.0,
        pruned_cost.params_millions(),
        decision.compression_ratio * 100.0,
        per_group[0],
        per_group[1],
        per_group[2],
    );

    // The shallow sibling, trained with the same budget.
    let mut shallow = models::resnet_cifar(3, ds.channels(), ds.num_classes(), 0.25, &mut rng)?;
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    for _ in 0..18 {
        train::train_epoch(
            &mut shallow,
            &mut opt,
            &ds.train_images,
            &ds.train_labels,
            32,
            &mut rng,
        )?;
    }
    let shallow_acc = train::evaluate(&mut shallow, &ds.test_images, &ds.test_labels, 64)?;
    let shallow_cost = analyze(&shallow, ds.channels(), ds.image_size())?;
    println!(
        "ResNet-20 original  : acc {:.2}%, {:.3}M params",
        shallow_acc * 100.0,
        shallow_cost.params_millions()
    );
    Ok(())
}
