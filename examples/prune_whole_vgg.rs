//! Whole-model HeadStart pruning of a VGG on the fine-grained synthetic
//! dataset — the pipeline behind the paper's Table 1, printed as the same
//! layer-by-layer trace (maps / params / FLOPs / inception acc / FT acc).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example prune_whole_vgg
//! ```

use std::error::Error;

use headstart::core::{HeadStartConfig, HeadStartPruner};
use headstart::data::{Dataset, DatasetSpec};
use headstart::nn::accounting::analyze;
use headstart::nn::optim::Sgd;
use headstart::nn::{models, train};
use headstart::pruning::driver::FineTune;
use headstart::tensor::Rng;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = Rng::seed_from(7);
    // The fine-grained CUB-200 stand-in (classes share genera, so wrong
    // pruning decisions hurt much more than on the CIFAR substitute).
    let ds = Dataset::generate(&DatasetSpec::cub_like())?;

    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )?;
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    for _ in 0..14 {
        train::train_epoch(
            &mut net,
            &mut opt,
            &ds.train_images,
            &ds.train_labels,
            32,
            &mut rng,
        )?;
    }
    let original = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
    let cost = analyze(&net, ds.channels(), ds.image_size())?;
    println!(
        "original: acc {:.2}%, {:.3}M params, {:.4}B MACs\n",
        original * 100.0,
        cost.params_millions(),
        cost.flops_billions()
    );

    // Whole-model HeadStart pruning at sp = 2, fine-tuning 3 epochs per
    // layer (scaled down from the paper's 40).
    let cfg = HeadStartConfig::new(2.0).max_episodes(40);
    let ft = FineTune {
        epochs: 3,
        ..FineTune::default()
    };
    let (outcome, _decisions) =
        HeadStartPruner::new(cfg, ft).prune_model(&mut net, &ds, &mut rng)?;

    println!(
        "{:<8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>9}",
        "LAYER", "#MAPS", "KEPT", "#PARAM(M)", "#MACS(B)", "ACC(INC)%", "ACC(FT)%"
    );
    for t in &outcome.traces {
        println!(
            "conv{:<4} {:>6} {:>6} {:>10.3} {:>10.4} {:>10.2} {:>9.2}",
            t.conv_ordinal,
            t.maps_before,
            t.maps_after,
            t.params_after as f64 / 1e6,
            t.flops_after as f64 / 1e9,
            t.inception_accuracy * 100.0,
            t.finetuned_accuracy * 100.0
        );
    }
    println!(
        "\nfinal: acc {:.2}% ({:+.2}% vs original), {:.3}M params, compression {:.1}%",
        outcome.final_accuracy * 100.0,
        (outcome.final_accuracy - original) * 100.0,
        outcome.cost.params_millions(),
        100.0 * outcome.cost.total_params as f64 / cost.total_params as f64
    );
    Ok(())
}
