//! Quickstart: train a small VGG on a synthetic dataset, then compare
//! HeadStart's learned inception against Li'17 and random pruning on a
//! single layer — the paper's core claim in miniature.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use headstart::core::{HeadStartConfig, LayerPruner};
use headstart::data::{Dataset, DatasetSpec};
use headstart::nn::optim::Sgd;
use headstart::nn::{models, surgery, train};
use headstart::pruning::{L1Norm, PruningCriterion, Random, ScoreContext};
use headstart::tensor::Rng;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = Rng::seed_from(42);

    // 1. A synthetic CIFAR-like task (stands in for CIFAR-100).
    let ds = Dataset::generate(&DatasetSpec::cifar_like())?;
    println!(
        "dataset: {} classes, {} train / {} test images of {}x{}px",
        ds.num_classes(),
        ds.train_labels.len(),
        ds.test_labels.len(),
        ds.image_size(),
        ds.image_size(),
    );

    // 2. Train a quarter-width VGG-11 to convergence.
    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )?;
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    for epoch in 0..12 {
        let stats = train::train_epoch(
            &mut net,
            &mut opt,
            &ds.train_images,
            &ds.train_labels,
            32,
            &mut rng,
        )?;
        println!(
            "epoch {epoch:2}: loss {:.3}, train acc {:.3}",
            stats.loss, stats.accuracy
        );
    }
    let original = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
    println!("original test accuracy: {:.2}%\n", original * 100.0);

    // 3. Prune ONE layer (conv ordinal 2) to half its maps, three ways,
    //    and compare inception accuracies (no fine-tuning).
    let ordinal = 2;
    let site = surgery::conv_sites(&net)[ordinal];
    let maps = net.conv(site.conv)?.out_channels();
    let keep_count = maps / 2;
    println!("pruning conv #{ordinal} ({maps} maps -> {keep_count}), inception accuracy:");

    // HeadStart: learn the inception with RL.
    let mut hs_net = net.clone();
    let cfg = HeadStartConfig::new(2.0);
    let decision = LayerPruner::new(cfg).prune(&mut hs_net, ordinal, &ds, &mut rng)?;
    surgery::prune_feature_maps(&mut hs_net, site.conv, &decision.keep)?;
    let hs_acc = train::evaluate(&mut hs_net, &ds.test_images, &ds.test_labels, 64)?;
    println!(
        "  HeadStart: {:.2}%  (learned {} maps in {} episodes)",
        hs_acc * 100.0,
        decision.keep.len(),
        decision.episodes()
    );

    // Metric baselines at exactly keep_count maps.
    for criterion in [
        &mut L1Norm::new() as &mut dyn PruningCriterion,
        &mut Random::new(),
    ] {
        let mut base_net = net.clone();
        let keep = {
            let mut ctx = ScoreContext::new(
                &mut base_net,
                site,
                &ds.train_images,
                &ds.train_labels,
                &mut rng,
            );
            criterion.keep_set(&mut ctx, keep_count)?
        };
        surgery::prune_feature_maps(&mut base_net, site.conv, &keep)?;
        let acc = train::evaluate(&mut base_net, &ds.test_images, &ds.test_labels, 64)?;
        println!("  {:>9}: {:.2}%", criterion.name(), acc * 100.0);
    }
    Ok(())
}
