//! Inference-speedup estimation on the paper's four platforms — the
//! Figure 6 experiment, using the roofline latency model in place of the
//! physical GTX 1080Ti / Jetson TX2 hardware.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example gpu_speedup
//! ```

use std::error::Error;

use headstart::gpusim::{devices, estimate};
use headstart::nn::{models, Network};
use headstart::tensor::Rng;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = Rng::seed_from(3);

    // Full-width architectures at the paper's real input sizes: the
    // latency model needs only the architecture, not trained weights.
    let scenarios: Vec<(&str, usize, Network, Network)> = vec![
        (
            "VGG-16 / CIFAR (32x32)",
            32,
            models::vgg16(3, 100, 32, 1.0, &mut rng)?,
            models::vgg16(3, 100, 32, 0.5, &mut rng)?, // sp = 2 pruned width
        ),
        (
            "VGG-16 / CUB (224x224)",
            224,
            models::vgg16(3, 200, 224, 1.0, &mut rng)?,
            models::vgg16(3, 200, 224, 0.5, &mut rng)?,
        ),
    ];

    println!(
        "{:<24} {:<16} {:>12} {:>12} {:>9}",
        "MODEL / DATASET", "DEVICE", "ORIG fps", "PRUNED fps", "SPEEDUP"
    );
    for (name, size, full, pruned) in &scenarios {
        for device in devices::all() {
            let f = estimate(&device, full, 3, *size)?;
            let p = estimate(&device, pruned, 3, *size)?;
            println!(
                "{:<24} {:<16} {:>12.1} {:>12.1} {:>8.2}x",
                name,
                device.name,
                f.fps(),
                p.fps(),
                p.fps() / f.fps()
            );
        }
        println!();
    }
    Ok(())
}
