//! Deployment round-trip: train → prune → checkpoint → reload →
//! estimate on the simulated edge device. What a downstream user does
//! with a pruned model.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example checkpoint_deploy
//! ```

use std::error::Error;

use headstart::core::{HeadStartConfig, LayerPruner};
use headstart::data::{Dataset, DatasetSpec};
use headstart::gpusim::{devices, estimate, estimate_energy_per_frame, lower_network};
use headstart::nn::optim::Sgd;
use headstart::nn::{checkpoint, models, surgery, train};
use headstart::tensor::Rng;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = Rng::seed_from(5);
    let ds = Dataset::generate(
        &DatasetSpec::cifar_like()
            .classes(8)
            .train_per_class(12)
            .test_per_class(8),
    )?;

    // Train a small model.
    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )?;
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    train::fit(
        &mut net,
        &mut opt,
        &ds.train_images,
        &ds.train_labels,
        32,
        10,
        &mut rng,
    )?;
    let acc = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
    println!("trained: {:.2}% test accuracy", acc * 100.0);

    // Prune two layers with HeadStart and make the result physical.
    let cfg = HeadStartConfig::new(2.0).max_episodes(40).eval_images(48);
    for ordinal in [1usize, 2] {
        let d = LayerPruner::new(cfg.clone()).prune(&mut net, ordinal, &ds, &mut rng)?;
        let conv = net.conv_indices()[ordinal];
        surgery::prune_feature_maps(&mut net, conv, &d.keep)?;
        println!("pruned conv{ordinal}: kept {} maps", d.keep.len());
    }
    // Refresh BN statistics for deployment (no fine-tuning).
    train::recalibrate_bn(&mut net, &ds.train_images, 32, 2)?;
    let pruned_acc = train::evaluate(&mut net, &ds.test_images, &ds.test_labels, 64)?;
    println!(
        "pruned + BN-recalibrated: {:.2}% test accuracy",
        pruned_acc * 100.0
    );

    // Ship it: save, reload, verify identical behaviour.
    let path = std::env::temp_dir().join("headstart_deploy_example.hsck");
    checkpoint::save(&net, &path)?;
    let mut deployed = checkpoint::load(&path)?;
    let deployed_acc = train::evaluate(&mut deployed, &ds.test_images, &ds.test_labels, 64)?;
    assert_eq!(pruned_acc, deployed_acc, "checkpoint must be bit-exact");
    println!(
        "checkpoint round-trip verified ({} bytes)",
        std::fs::metadata(&path)?.len()
    );

    // What does inference cost at the edge?
    let tx2 = devices::jetson_tx2_gpu();
    let report = estimate(&tx2, &deployed, ds.channels(), ds.image_size())?;
    let workload = lower_network("deployed", &deployed, ds.channels(), ds.image_size())?;
    let energy = estimate_energy_per_frame(&tx2, &workload)?;
    println!(
        "on {}: {:.0} fps, {:.3} mJ/frame (roofline estimate)",
        tx2.name,
        report.fps(),
        energy * 1e3
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
