#!/bin/sh
# Full (non-quick) re-runs of the training-heavy experiments; all four
# binaries are thin wrappers over the hs-runner pipeline crate.
set -e
mkdir -p results_pending
for exp in ablation_reward table2_vgg_cub table3_vgg_cifar table4_resnet_blocks; do
    echo "=== $exp (full) ==="
    cargo run --release -p hs-bench --bin "$exp" \
        2>results_pending/$exp.log > results_pending/$exp.txt
    echo "DONE $exp"
done
echo ALL_PENDING_DONE
