#!/bin/sh
# Regenerates every table/figure of the paper, teeing outputs to results/.
# Each experiment binary is a thin arrangement of the hs-runner pipeline
# (see crates/runner); single ad-hoc runs go through the hs_run binary:
#   cargo run --release -p hs-runner --bin hs_run -- --quick --artifact run.json
# Full runs; pass --quick through to all binaries for a smoke test.
# Override the experiment list with EXPS="table1_layerwise_cub ..." to
# re-run a subset.
set -e
mkdir -p results
ARG="$1"
DEFAULT="fig3_single_layer table1_layerwise_cub table2_vgg_cub \
table3_vgg_cifar table4_resnet_blocks fig6_inference_speedup ablation_reward"
for exp in ${EXPS:-$DEFAULT}; do
    echo "=== $exp ==="
    cargo run --release -p hs-bench --bin "$exp" -- $ARG 2>results/$exp.log | tee results/$exp.txt
done
echo "=== hs_run (pipeline artifact) ==="
cargo run --release -p hs-runner --bin hs_run -- $ARG --label pipeline \
    --artifact results/pipeline.json 2>results/hs_run.log | tee results/hs_run.txt
echo "All experiments done; outputs in results/"
